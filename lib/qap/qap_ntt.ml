(* QAP over roots of unity: the modern alternative to the paper's
   arithmetic-progression interpolation points (ablation; see DESIGN.md).

   The paper fixes sigma_j = j and pays O(M(n) log n) subproduct-tree
   algebra for the prover's interpolate-multiply-divide pipeline (§A.3).
   Pinocchio-era systems instead put the constraints at the n-th roots of
   unity of an FFT-friendly field:

     - interpolation is a size-n inverse NTT,
     - the divisor is D(t) = t^n - 1, so the exact division
       H = P_w / D is coefficient folding: h_i = c_{n+i}, with the
       divisibility witness c_i + c_{n+i} = 0,
     - the verifier's barycentric weights collapse to
       A_i(tau) = (tau^n - 1)/n * sum_j a_ij * w^j / (tau - w^j).

   The |C| constraints are padded to n = 2^k with trivial 0 = 0 rows
   (satisfied by every assignment, so soundness is unaffected). This
   module mirrors Qap's prover/verifier entry points; the ablation bench
   compares the two prover pipelines, and the test-suite checks that both
   agree with the constraint semantics. *)

open Fieldlib
open Constr

type t = {
  ctx : Fp.ctx;
  ntt : Polylib.Ntt.ctx;
  sys : R1cs.system;
  nc : int; (* original |C| *)
  n : int; (* padded domain size, a power of two *)
  log_n : int;
  omega : Fp.el; (* primitive n-th root of unity *)
  domain : Fp.el array; (* w^0 .. w^(n-1) *)
}

let next_pow2 n =
  let rec go p l = if p >= n then (p, l) else go (2 * p) (l + 1) in
  go 1 0

let of_r1cs (sys : R1cs.system) =
  let ctx = sys.R1cs.field in
  let ntt = Polylib.Ntt.create ctx in
  let nc = R1cs.num_constraints sys in
  if nc = 0 then invalid_arg "Qap_ntt.of_r1cs: empty system";
  let n, log_n = next_pow2 nc in
  let omega = Polylib.Ntt.root_of_order ntt log_n in
  let domain = Array.make n Fp.one in
  for j = 1 to n - 1 do
    domain.(j) <- Fp.mul ctx domain.(j - 1) omega
  done;
  { ctx; ntt; sys; nc; n; log_n; omega; domain }

(* ------------------------------------------------------------------ *)
(* Prover                                                              *)
(* ------------------------------------------------------------------ *)

let eval_rows q (row : R1cs.constr -> Lincomb.t) (w : Fp.el array) =
  let out = Array.make q.n Fp.zero in
  Array.iteri (fun j k -> out.(j) <- Lincomb.eval q.ctx (row k) w) q.sys.R1cs.constraints;
  out

(* Coefficients (length n) of the degree-<n polynomial interpolating the
   row evaluations over the domain: one inverse NTT. *)
let interpolate q evals = Polylib.Ntt.inverse q.ntt evals

let pw_coeffs q (w : Fp.el array) =
  let ctx = q.ctx in
  let a = Polylib.Poly.of_coeffs (interpolate q (eval_rows q (fun k -> k.R1cs.a) w)) in
  let b = Polylib.Poly.of_coeffs (interpolate q (eval_rows q (fun k -> k.R1cs.b) w)) in
  let c = Polylib.Poly.of_coeffs (interpolate q (eval_rows q (fun k -> k.R1cs.c) w)) in
  let ab = Polylib.Ntt.mul q.ntt a b in
  Polylib.Poly.sub ctx ab c

exception Not_divisible

(* Packed coefficients of P_w = A*B - C on the doubled domain: three
   inverse NTTs for the interpolations, two forwards + pointwise + one
   inverse for the product, everything in one flat arena per vector. The
   result vector has 2n slots; slots [n, 2n) are H, slots [0, n) must be
   the negated H when w satisfies the constraints. *)
let pw_packed q (w : Fp.el array) =
  let ctx = q.ctx in
  let sc = Fp.scratch_for ctx in
  let n = q.n in
  let n2 = 2 * n in
  let interp_packed row =
    let v = Fp.Vec.of_array ctx (eval_rows q row w) in
    Polylib.Ntt.inverse_vec q.ntt v;
    v
  in
  let a = interp_packed (fun k -> k.R1cs.a) in
  let b = interp_packed (fun k -> k.R1cs.b) in
  let c = interp_packed (fun k -> k.R1cs.c) in
  let fa = Fp.Vec.create ctx n2 in
  Fp.Vec.blit a 0 fa 0 n;
  let fb = Fp.Vec.create ctx n2 in
  Fp.Vec.blit b 0 fb 0 n;
  Polylib.Ntt.forward_vec q.ntt fa;
  Polylib.Ntt.forward_vec q.ntt fb;
  for i = 0 to n2 - 1 do
    Fp.Vec.mul ctx sc fa i fa i fb i
  done;
  Polylib.Ntt.inverse_vec q.ntt fa;
  (* P = AB - C; deg C < n touches only the low slots. *)
  for i = 0 to n - 1 do
    Fp.Vec.sub ctx sc fa i fa i c i
  done;
  fa

(* H = P_w / (t^n - 1) by coefficient folding; raises if the division is
   not exact (Claim A.1 analog: w does not satisfy the constraints). *)
let prover_h q (w : Fp.el array) : Fp.el array =
  Zobs.Span.with_ ~name:"qap_ntt.prover_h" (fun () ->
      let ctx = q.ctx in
      let sc = Fp.scratch_for ctx in
      let n = q.n in
      let p = pw_packed q w in
      (* exactness: p_i + p_{n+i} = 0 for all i < n, checked in place *)
      for i = 0 to n - 1 do
        Fp.Vec.add ctx sc p i p i p (n + i);
        if not (Fp.Vec.is_zero p i) then raise Not_divisible
      done;
      Array.init n (fun i -> Fp.Vec.get p (n + i)))

let prover_h_forced q (w : Fp.el array) : Fp.el array =
  Zobs.Span.with_ ~name:"qap_ntt.prover_h_forced" (fun () ->
      let p = pw_packed q w in
      Array.init q.n (fun i -> Fp.Vec.get p (q.n + i)))

(* Differential reference for the packed fast path: subproduct-tree
   interpolation over the same roots-of-unity domain, boxed Karatsuba
   product, Newton division by t^n - 1. Bit-identical H by construction;
   the test-suite and the bench's ntt-vs-lagrange experiment compare the
   two. *)
let prover_h_reference q (w : Fp.el array) : Fp.el array =
  let ctx = q.ctx in
  let interp evals = Polylib.Subproduct.interpolate_points ctx q.domain evals in
  let a = interp (eval_rows q (fun k -> k.R1cs.a) w) in
  let b = interp (eval_rows q (fun k -> k.R1cs.b) w) in
  let c = interp (eval_rows q (fun k -> k.R1cs.c) w) in
  let p = Polylib.Poly.(sub ctx (mul ctx a b) c) in
  let d = Polylib.Poly.(sub ctx (monomial Fp.one q.n) one) in
  let h, r = Polylib.Poly.div_rem_fast ctx p d in
  if not (Polylib.Poly.is_zero r) then raise Not_divisible;
  let out = Array.make q.n Fp.zero in
  Array.blit (Polylib.Poly.coeffs h) 0 out 0 (Polylib.Poly.degree h + 1);
  out

(* ------------------------------------------------------------------ *)
(* Verifier                                                            *)
(* ------------------------------------------------------------------ *)

type queries = {
  tau : Fp.el;
  d_tau : Fp.el; (* tau^n - 1 *)
  a_tau : Fp.el array; (* indexed by variable 0..num_vars *)
  b_tau : Fp.el array;
  c_tau : Fp.el array;
  qd : Fp.el array; (* 1, tau, ..., tau^(n-1) *)
}

exception Tau_collision

let queries q ~tau : queries =
  let ctx = q.ctx in
  let nvars = q.sys.R1cs.num_vars in
  let diffs = Array.map (fun s -> Fp.sub ctx tau s) q.domain in
  if Array.exists Fp.is_zero diffs then raise Tau_collision;
  let inv_diffs = Fp.batch_inv ctx diffs in
  let tau_n = Fp.pow_int ctx tau q.n in
  let d_tau = Fp.sub ctx tau_n Fp.one in
  let n_inv = Fp.inv ctx (Fp.of_int ctx q.n) in
  let scale = Fp.mul ctx d_tau n_inv in
  (* weight_j = (tau^n - 1)/n * w^j / (tau - w^j) *)
  let weight = Array.init q.n (fun j -> Fp.mul ctx scale (Fp.mul ctx q.domain.(j) inv_diffs.(j))) in
  let a_tau = Array.make (nvars + 1) Fp.zero in
  let b_tau = Array.make (nvars + 1) Fp.zero in
  let c_tau = Array.make (nvars + 1) Fp.zero in
  Array.iteri
    (fun j (k : R1cs.constr) ->
      let wj = weight.(j) in
      let accumulate dst lc =
        List.iter (fun (i, coef) -> dst.(i) <- Fp.add ctx dst.(i) (Fp.mul ctx coef wj)) (Lincomb.terms lc)
      in
      accumulate a_tau k.R1cs.a;
      accumulate b_tau k.R1cs.b;
      accumulate c_tau k.R1cs.c)
    q.sys.R1cs.constraints;
  let qd = Array.make q.n Fp.one in
  for i = 1 to q.n - 1 do
    qd.(i) <- Fp.mul ctx qd.(i - 1) tau
  done;
  { tau; d_tau; a_tau; b_tau; c_tau; qd }

let z_slice q (evals : Fp.el array) = Array.sub evals 1 q.sys.R1cs.num_z

let io_contribution q (evals : Fp.el array) (io : Fp.el array) =
  let ctx = q.ctx and sys = q.sys in
  let nio = R1cs.num_io sys in
  if Array.length io <> nio then invalid_arg "Qap_ntt.io_contribution: bad io length";
  let acc = ref evals.(0) in
  for i = 0 to nio - 1 do
    acc := Fp.add ctx !acc (Fp.mul ctx io.(i) evals.(sys.R1cs.num_z + 1 + i))
  done;
  !acc
