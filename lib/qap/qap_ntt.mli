(** QAP over roots of unity: the modern alternative to the paper's
    arithmetic-progression interpolation points (ablation; DESIGN.md §2).

    Constraints sit at the n-th roots of unity of an NTT-friendly field
    (n = 2^k >= |C|, padded with trivially-satisfied rows): interpolation
    is an inverse NTT, the divisor is D(t) = t^n - 1 so exact division is
    coefficient folding, and the barycentric weights collapse to
    (tau^n - 1)/n * w^j / (tau - w^j). Mirrors {!Qap}'s entry points. *)

open Fieldlib
open Constr

type t = {
  ctx : Fp.ctx;
  ntt : Polylib.Ntt.ctx;
  sys : R1cs.system;
  nc : int; (** original |C| *)
  n : int; (** padded domain size, a power of two *)
  log_n : int;
  omega : Fp.el;
  domain : Fp.el array; (** w^0 .. w^(n-1) *)
}

exception Not_divisible
exception Tau_collision

val of_r1cs : R1cs.system -> t
(** The field must have 2-adicity at least log2 |C| (use
    {!Primes.bls12_381_fr}). *)

val pw_coeffs : t -> Fp.el array -> Polylib.Poly.t
(** Boxed P_w = A*B - C (kept for the test-suite; the prover entry points
    below run the packed pipeline). *)

val prover_h : t -> Fp.el array -> Fp.el array
(** Packed fast path (span [qap_ntt.prover_h]): three inverse NTTs, the
    doubled-domain product, coefficient folding — all over {!Fp.Vec}
    arenas. Raises {!Not_divisible} if w does not satisfy the
    constraints. *)

val prover_h_forced : t -> Fp.el array -> Fp.el array
(** Divide-and-drop-remainder (span [qap_ntt.prover_h_forced]); the
    cheating prover of the adversarial suite. *)

val prover_h_reference : t -> Fp.el array -> Fp.el array
(** Differential reference: subproduct-tree interpolation over the same
    roots-of-unity domain, boxed product, Newton division by t^n - 1.
    Bit-identical to {!prover_h} on satisfying witnesses. *)

type queries = {
  tau : Fp.el;
  d_tau : Fp.el; (** tau^n - 1 *)
  a_tau : Fp.el array;
  b_tau : Fp.el array;
  c_tau : Fp.el array;
  qd : Fp.el array; (** 1, tau, ..., tau^(n-1) *)
}

val queries : t -> tau:Fp.el -> queries
val z_slice : t -> Fp.el array -> Fp.el array
val io_contribution : t -> Fp.el array -> Fp.el array -> Fp.el
