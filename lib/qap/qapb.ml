(* Backend dispatch for the QAP encoding: the paper's arithmetic-progression
   construction (Qap, subproduct-tree prover) versus the roots-of-unity
   construction (Qap_ntt, NTT prover). The NTT path is the production
   default wherever the field supports it: [Auto] selects it iff the
   2-adicity of p-1 covers the padded domain size 2^ceil(log2 |C|).
   Mersenne-style fields (p127: 2-adicity 1) keep the Lagrange pipeline and
   its seed-identical transcripts.

   The two backends are distinct proof systems — interpolation points,
   divisor, H length and hence wire bytes all differ — so verifier and
   prover must be configured with the same backend; a mismatch surfaces as
   a query/commitment length session error, never a silent wrong answer. *)

open Fieldlib
open Constr

type backend = Auto | Ntt | Lagrange

let backend_to_string = function Auto -> "auto" | Ntt -> "ntt" | Lagrange -> "lagrange"

let backend_of_string = function
  | "auto" -> Some Auto
  | "ntt" -> Some Ntt
  | "lagrange" -> Some Lagrange
  | _ -> None

type t = L of Qap.t | N of Qap_ntt.t

exception Not_divisible = Qap_ntt.Not_divisible
exception Tau_collision

(* Selection telemetry: which pipeline production runs actually took. *)
let c_ntt = Zobs.Counter.make "qap.backend.ntt"
let c_lagrange = Zobs.Counter.make "qap.backend.lagrange"

let log2_ceil n =
  let rec go p l = if p >= n then l else go (2 * p) (l + 1) in
  go 1 0

(* NTT viability: the padded domain 2^ceil(log2 |C|) must divide the
   2-adic torsion of the multiplicative group, with one bit to spare for
   the doubled product domain. *)
let ntt_viable field nc =
  Primes.two_adicity (Fp.modulus field) >= log2_ceil nc + 1

let of_r1cs ?(backend = Auto) (sys : R1cs.system) : t =
  let nc = R1cs.num_constraints sys in
  let pick_ntt =
    match backend with
    | Ntt ->
      if not (ntt_viable sys.R1cs.field nc) then
        invalid_arg "Qapb.of_r1cs: field 2-adicity too small for the NTT backend";
      true
    | Lagrange -> false
    | Auto -> nc > 0 && ntt_viable sys.R1cs.field nc
  in
  if pick_ntt then begin
    Zobs.Counter.incr c_ntt;
    N (Qap_ntt.of_r1cs sys)
  end
  else begin
    Zobs.Counter.incr c_lagrange;
    L (Qap.of_r1cs sys)
  end

let backend = function L _ -> Lagrange | N _ -> Ntt
let ctx = function L q -> q.Qap.ctx | N q -> q.Qap_ntt.ctx
let sys = function L q -> q.Qap.sys | N q -> q.Qap_ntt.sys
let nc = function L q -> q.Qap.nc | N q -> q.Qap_ntt.nc

(* Length of the h proof vector: |C|+1 coefficients for the Lagrange
   divisor of degree |C|, n for the folded NTT quotient. *)
let h_len = function L q -> q.Qap.nc + 1 | N q -> q.Qap_ntt.n

(* Force one-time lazy structure (subproduct trees, twiddle plans) so
   timed sections measure steady-state prover work. *)
let prewarm = function
  | L q ->
    ignore (Lazy.force q.Qap.divisor);
    ignore (Lazy.force q.Qap.interp)
  | N q ->
    Polylib.Ntt.prewarm q.Qap_ntt.ntt q.Qap_ntt.log_n;
    Polylib.Ntt.prewarm q.Qap_ntt.ntt (q.Qap_ntt.log_n + 1)

let prover_h t w =
  match t with L q -> Qap.prover_h q w | N q -> Qap_ntt.prover_h q w

let prover_h_forced t w =
  match t with L q -> Qap.prover_h_forced q w | N q -> Qap_ntt.prover_h_forced q w

type queries = {
  tau : Fp.el;
  d_tau : Fp.el;
  a_tau : Fp.el array;
  b_tau : Fp.el array;
  c_tau : Fp.el array;
  qd : Fp.el array;
}

let queries t ~tau : queries =
  match t with
  | L q -> (
    match Qap.queries q ~tau with
    | { Qap.tau; d_tau; a_tau; b_tau; c_tau; qd } -> { tau; d_tau; a_tau; b_tau; c_tau; qd }
    | exception Qap.Tau_collision -> raise Tau_collision)
  | N q -> (
    match Qap_ntt.queries q ~tau with
    | { Qap_ntt.tau; d_tau; a_tau; b_tau; c_tau; qd } ->
      { tau; d_tau; a_tau; b_tau; c_tau; qd }
    | exception Qap_ntt.Tau_collision -> raise Tau_collision)

let z_slice t evals = match t with L q -> Qap.z_slice q evals | N q -> Qap_ntt.z_slice q evals

let io_contribution t evals io =
  match t with
  | L q -> Qap.io_contribution q evals io
  | N q -> Qap_ntt.io_contribution q evals io
