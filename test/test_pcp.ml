open Fieldlib
open Constr
open Pcp

let ctx = Fp.create Primes.p61
let fi = Fp.of_int ctx

let random_sys seed = Test_constr.random_satisfiable_r1cs seed

let split_w (sys : R1cs.system) (w : Fp.el array) =
  let z = Array.sub w 1 sys.R1cs.num_z in
  let io = Array.sub w (sys.R1cs.num_z + 1) (R1cs.num_io sys) in
  (z, io)

let honest_oracle qap w =
  let z, _ = split_w (Qapb.sys qap) w in
  let h = Qapb.prover_h qap w in
  Oracle.honest ctx z h

let qtest name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let params = Pcp_zaatar.test_params

let zaatar_tests =
  [
    qtest "zaatar completeness" 40 QCheck.small_int (fun seed ->
        let sys, w = random_sys seed in
        let qap = Qapb.of_r1cs sys in
        let _, io = split_w sys w in
        let prg = Chacha.Prg.create ~seed:(Printf.sprintf "zc %d" seed) () in
        Pcp_zaatar.(accepts (run ~params qap prg (honest_oracle qap w) ~io)));
    qtest "zaatar completeness at paper parameters" 3 QCheck.small_int (fun seed ->
        let sys, w = random_sys seed in
        let qap = Qapb.of_r1cs sys in
        let _, io = split_w sys w in
        let prg = Chacha.Prg.create ~seed:(Printf.sprintf "zp %d" seed) () in
        Pcp_zaatar.(accepts (run ~params:paper_params qap prg (honest_oracle qap w) ~io)));
    qtest "zaatar rejects wrong output (whp)" 40 QCheck.small_int (fun seed ->
        (* Claim the same z but a corrupted output y: the io part fed to the
           divisibility test no longer matches. *)
        let sys, w = random_sys seed in
        if R1cs.num_io sys = 0 then true
        else begin
          let qap = Qapb.of_r1cs sys in
          let _, io = split_w sys w in
          let perturbed_var = sys.R1cs.num_vars in
          let io' = Array.copy io in
          io'.(Array.length io' - 1) <- Fp.add ctx io'.(Array.length io' - 1) Fp.one;
          let var_used =
            Array.exists
              (fun (k : R1cs.constr) ->
                List.exists (fun (v, _) -> v = perturbed_var)
                  (Lincomb.terms k.R1cs.a @ Lincomb.terms k.R1cs.b @ Lincomb.terms k.R1cs.c))
              sys.R1cs.constraints
          in
          if not var_used then true
          else begin
            let prg = Chacha.Prg.create ~seed:(Printf.sprintf "zw %d" seed) () in
            (* The honest oracle for the true w, but claimed io'. *)
            not Pcp_zaatar.(accepts (run ~params qap prg (honest_oracle qap w) ~io:io'))
          end
        end);
    qtest "zaatar rejects corrupted witness with forced h (whp)" 40 QCheck.small_int (fun seed ->
        let sys, w = random_sys seed in
        let qap = Qapb.of_r1cs sys in
        let w' = Array.copy w in
        w'.(1) <- Fp.add ctx w'.(1) (fi 5);
        if R1cs.satisfied ctx sys w' then true
        else begin
          let z', io = (fst (split_w sys w'), snd (split_w sys w')) in
          let h' = Qapb.prover_h_forced qap w' in
          let oracle = Oracle.honest ctx z' h' in
          let prg = Chacha.Prg.create ~seed:(Printf.sprintf "zf %d" seed) () in
          not Pcp_zaatar.(accepts (run ~params qap prg oracle ~io))
        end);
    qtest "zaatar rejects non-linear oracle (whp)" 40 QCheck.small_int (fun seed ->
        let sys, w = random_sys seed in
        let qap = Qapb.of_r1cs sys in
        let _, io = split_w sys w in
        let oracle = Oracle.nonlinear ctx (honest_oracle qap w) in
        let prg = Chacha.Prg.create ~seed:(Printf.sprintf "zn %d" seed) () in
        match Pcp_zaatar.run ~params qap prg oracle ~io with
        | Pcp_zaatar.Reject_linearity _ -> true
        | Pcp_zaatar.Accept ->
          (* sum-of-squares poison can cancel by luck on tiny systems *)
          false
        | Pcp_zaatar.Reject_divisibility _ -> true);
    Alcotest.test_case "query count matches l' = 6 rho_lin + 4" `Quick (fun () ->
        let sys, _ = random_sys 11 in
        let qap = Qapb.of_r1cs sys in
        let prg = Chacha.Prg.create ~seed:"count" () in
        let p = { Pcp_zaatar.rho = 3; rho_lin = 5 } in
        let q = Pcp_zaatar.gen_queries ~params:p qap prg in
        let total = Array.length q.Pcp_zaatar.z_queries + Array.length q.Pcp_zaatar.h_queries in
        Alcotest.(check int) "total" (Pcp_zaatar.num_queries p) total;
        Alcotest.(check int) "per-rep" (3 * ((6 * 5) + 4)) total);
    Alcotest.test_case "query vector lengths" `Quick (fun () ->
        let sys, _ = random_sys 12 in
        let qap = Qapb.of_r1cs ~backend:Qapb.Lagrange sys in
        let prg = Chacha.Prg.create ~seed:"len" () in
        let q = Pcp_zaatar.gen_queries ~params qap prg in
        Array.iter
          (fun v -> Alcotest.(check int) "z len" sys.R1cs.num_z (Array.length v))
          q.Pcp_zaatar.z_queries;
        Array.iter
          (fun v -> Alcotest.(check int) "h len" (R1cs.num_constraints sys + 1) (Array.length v))
          q.Pcp_zaatar.h_queries);
  ]

(* --- Ginger baseline --- *)

(* A small Ginger system with IO: y = x^2 + 3 (see test_constr). *)
let ginger_sys = Test_constr.ginger_sys

let ginger_tests =
  [
    Alcotest.test_case "ginger completeness" `Quick (fun () ->
        let io = [| fi 5; fi 28 |] in
        let bound = Quad.bind_io ctx ginger_sys io in
        let z = [| fi 25 |] in
        Alcotest.(check bool) "bound satisfied" true (Quad.satisfied ctx bound [| Fp.one; fi 25 |]);
        let uz, uzz = Pcp_ginger.proof_vector ctx z in
        let oracle = Oracle.honest ctx uz uzz in
        let prg = Chacha.Prg.create ~seed:"ginger ok" () in
        Alcotest.(check bool) "accept" true
          Pcp_ginger.(accepts (run ~params:test_params ctx bound prg oracle)));
    Alcotest.test_case "ginger rejects wrong witness (whp)" `Quick (fun () ->
        let io = [| fi 5; fi 28 |] in
        let bound = Quad.bind_io ctx ginger_sys io in
        let z = [| fi 24 |] in
        let uz, uzz = Pcp_ginger.proof_vector ctx z in
        let oracle = Oracle.honest ctx uz uzz in
        let reject = ref 0 in
        for seed = 0 to 19 do
          let prg = Chacha.Prg.create ~seed:(Printf.sprintf "ginger bad %d" seed) () in
          if not Pcp_ginger.(accepts (run ~params:test_params ctx bound prg oracle)) then incr reject
        done;
        Alcotest.(check bool) "mostly rejected" true (!reject >= 18));
    Alcotest.test_case "ginger rejects wrong output" `Quick (fun () ->
        let io = [| fi 5; fi 29 |] in
        let bound = Quad.bind_io ctx ginger_sys io in
        let z = [| fi 25 |] in
        let uz, uzz = Pcp_ginger.proof_vector ctx z in
        let oracle = Oracle.honest ctx uz uzz in
        let prg = Chacha.Prg.create ~seed:"ginger out" () in
        Alcotest.(check bool) "reject" false
          Pcp_ginger.(accepts (run ~params:test_params ctx bound prg oracle)));
    Alcotest.test_case "ginger rejects proof not of form (z, z x z)" `Quick (fun () ->
        let io = [| fi 5; fi 28 |] in
        let bound = Quad.bind_io ctx ginger_sys io in
        let z = [| fi 25 |] in
        let uz, uzz = Pcp_ginger.proof_vector ctx z in
        let uzz' = Array.copy uzz in
        uzz'.(0) <- Fp.add ctx uzz'.(0) Fp.one;
        let oracle = Oracle.honest ctx uz uzz' in
        let reject = ref 0 in
        for seed = 0 to 19 do
          let prg = Chacha.Prg.create ~seed:(Printf.sprintf "ginger zz %d" seed) () in
          if not Pcp_ginger.(accepts (run ~params:test_params ctx bound prg oracle)) then incr reject
        done;
        Alcotest.(check bool) "mostly rejected" true (!reject >= 15));
    qtest "ginger completeness on random systems" 20 QCheck.small_int (fun seed ->
        (* Convert a random satisfiable R1CS into a Ginger system: each
           quadratic-form constraint ab = c is one degree-2 constraint. *)
        let sys, w = random_sys seed in
        let gsys =
          {
            Quad.field = ctx;
            num_vars = sys.R1cs.num_vars;
            num_z = sys.R1cs.num_z;
            constraints =
              Array.map
                (fun (k : R1cs.constr) ->
                  Quad.qpoly_sub ctx (Quad.qpoly_mul_lin ctx k.R1cs.a k.R1cs.b)
                    (Quad.qpoly_of_lincomb k.R1cs.c))
                sys.R1cs.constraints;
          }
        in
        let io = Array.sub w (sys.R1cs.num_z + 1) (R1cs.num_io sys) in
        let bound = Quad.bind_io ctx gsys io in
        let z = Array.sub w 1 sys.R1cs.num_z in
        let uz, uzz = Pcp_ginger.proof_vector ctx z in
        let oracle = Oracle.honest ctx uz uzz in
        let prg = Chacha.Prg.create ~seed:(Printf.sprintf "gr %d" seed) () in
        Pcp_ginger.(accepts (run ~params:test_params ctx bound prg oracle)));
  ]

let suite = zaatar_tests @ ginger_tests
