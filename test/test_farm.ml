(* Zfarm: the concurrent prover farm. Unit coverage for the LRU setup
   cache, the busy/retry-after wire convention and the resumable frame
   reader, then end-to-end farm runs over real sockets: same-digest
   connections share one cached QAP (zero server-side constructions on the
   warm path, asserted via the qap.* counters), eviction under a tiny
   cache bound, and admission control shedding a third client while two
   in-flight sessions still verify. *)

open Fieldlib
open Argsys

let fi = Test_wire.fi
let fctx = Test_wire.fctx
let square_plus_3 = Test_wire.square_plus_3
let config = Argument.test_config

(* A second computation (y = x^3) so cache tests have a distinct digest. *)
let cube : Argument.computation =
  (* z layout: slot 0 = 1, var 1 = witness x^2, var 2 = input x, var 3 = output x^3 *)
  let c1 =
    { Constr.R1cs.a = Constr.Lincomb.of_var 2; b = Constr.Lincomb.of_var 2; c = Constr.Lincomb.of_var 1 }
  in
  let c2 =
    { Constr.R1cs.a = Constr.Lincomb.of_var 1; b = Constr.Lincomb.of_var 2; c = Constr.Lincomb.of_var 3 }
  in
  let r1cs = { Constr.R1cs.field = fctx; num_vars = 3; num_z = 1; constraints = [| c1; c2 |] } in
  let solve x =
    let x0 = x.(0) in
    let sq = Fp.mul fctx x0 x0 in
    [| Fp.one; sq; x0; Fp.mul fctx sq x0 |]
  in
  { Argument.r1cs; num_inputs = 1; num_outputs = 1; solve }

let lookup =
  let d_sq = Argument.digest square_plus_3 and d_cube = Argument.digest cube in
  fun d ->
    if d = d_sq then Some square_plus_3 else if d = d_cube then Some cube else None

(* ------------------------------------------------------------------ *)
(* Setup_cache unit tests                                              *)
(* ------------------------------------------------------------------ *)

let test_cache_lru () =
  let open Zfarm.Setup_cache in
  let c = create ~bound_bytes:200 in
  let build v bytes () = (v, bytes) in
  Alcotest.(check string) "miss builds" "A" (fst (find c "a" (build "A" 80)));
  Alcotest.(check string) "hit returns cached" "A" (fst (find c "a" (build "WRONG" 80)));
  ignore (find c "b" (build "B" 80));
  (* touch a so b is the LRU victim when c arrives *)
  ignore (find c "a" (build "WRONG" 80));
  ignore (find c "c" (build "C" 80));
  Alcotest.(check bool) "a survived (recently used)" true (mem c "a");
  Alcotest.(check bool) "b evicted (LRU)" false (mem c "b");
  Alcotest.(check bool) "c resident" true (mem c "c");
  let s = stats c in
  Alcotest.(check int) "hits" 2 s.hits;
  Alcotest.(check int) "misses" 3 s.misses;
  Alcotest.(check int) "evictions" 1 s.evictions;
  Alcotest.(check int) "entries" 2 s.entries;
  Alcotest.(check bool) "bytes within bound" true (s.bytes <= 200);
  (* an oversized entry is served but not retained *)
  Alcotest.(check string) "oversized served" "X" (fst (find c "x" (build "X" 10_000)));
  Alcotest.(check bool) "oversized not retained" false (mem c "x");
  Alcotest.(check int) "prior entries intact" 2 (stats c).entries

let test_busy_wire () =
  let m = Zwire.busy_msg ~retry_after_ms:250 in
  Alcotest.(check bool) "is_busy" true (Zwire.is_busy m);
  (match Zwire.decode (Zwire.encode m) with
  | Zwire.Error_msg s ->
    Alcotest.(check (option int)) "retry-after round-trips" (Some 250)
      (Zwire.retry_after_of_error s)
  | _ -> Alcotest.fail "busy_msg should decode as Error_msg");
  Alcotest.(check (option int)) "plain error text is not busy" None
    (Zwire.retry_after_of_error "unknown computation deadbeef");
  Alcotest.(check bool) "plain Error_msg is not busy" false
    (Zwire.is_busy (Zwire.Error_msg "nope"))

(* Dribble a frame through a socketpair one byte at a time: the reader
   must report Awaiting until the last byte lands, then the exact
   payload; then EOF at a frame boundary. *)
let test_frame_reader () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rd = Znet.of_fd a and wr = Znet.of_fd b in
  Znet.set_nonblocking rd;
  let reader = Znet.Frame_reader.create () in
  Alcotest.(check bool) "empty socket awaits" true (Znet.Frame_reader.step reader rd = `Awaiting);
  let payload = Bytes.of_string "hello farm" in
  let framed = Znet.frame payload in
  for i = 0 to Bytes.length framed - 1 do
    (match Znet.Frame_reader.step reader rd with
    | `Awaiting -> ()
    | _ -> Alcotest.fail "frame completed early");
    ignore (Unix.write b framed i 1)
  done;
  (match Znet.Frame_reader.step reader rd with
  | `Frame p -> Alcotest.(check string) "payload intact" "hello farm" (Bytes.to_string p)
  | _ -> Alcotest.fail "frame should be complete");
  (* two frames back to back arrive as two steps *)
  let f1 = Znet.frame (Bytes.of_string "one") and f2 = Znet.frame (Bytes.of_string "two") in
  ignore (Unix.write b f1 0 (Bytes.length f1));
  ignore (Unix.write b f2 0 (Bytes.length f2));
  (match Znet.Frame_reader.step reader rd with
  | `Frame p -> Alcotest.(check string) "first of two" "one" (Bytes.to_string p)
  | _ -> Alcotest.fail "first frame missing");
  (match Znet.Frame_reader.step reader rd with
  | `Frame p -> Alcotest.(check string) "second of two" "two" (Bytes.to_string p)
  | _ -> Alcotest.fail "second frame missing");
  Znet.close wr;
  Alcotest.(check bool) "EOF at boundary" true (Znet.Frame_reader.step reader rd = `Eof);
  Znet.close rd;
  (* EOF mid-frame is a Closed error, like the blocking reader *)
  let a2, b2 = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rd2 = Znet.of_fd a2 and wr2 = Znet.of_fd b2 in
  Znet.set_nonblocking rd2;
  let reader2 = Znet.Frame_reader.create () in
  ignore (Unix.write b2 framed 0 6);
  (match Znet.Frame_reader.step reader2 rd2 with
  | `Awaiting -> ()
  | _ -> Alcotest.fail "partial frame should await");
  Znet.close wr2;
  (match Znet.Frame_reader.step reader2 rd2 with
  | exception Znet.Net_error (Znet.Closed _) -> ()
  | _ -> Alcotest.fail "mid-frame EOF should raise Closed");
  Znet.close rd2

(* ------------------------------------------------------------------ *)
(* End-to-end farm runs                                                *)
(* ------------------------------------------------------------------ *)

let with_farm ?(fconfig = { Zfarm.Farm.default with arg_config = config }) ~max_conns body =
  Znet.Svcstats.reset ();
  let cap = Test_serve.capture () in
  let server =
    Domain.spawn (fun () ->
        Zfarm.Farm.serve ~config:fconfig ~lookup ~max_conns
          ~log:(Test_serve.log_to cap) "127.0.0.1:0")
  in
  let addr = Test_serve.wait_for cap "listening on " in
  Fun.protect ~finally:(fun () -> Domain.join server) (fun () -> body addr)

let run_client ?(comp = square_plus_3) ~seed addr =
  let prg = Chacha.Prg.create ~seed () in
  Remote.run_connect ~config ~addr comp ~prg ~inputs:[| [| fi 5 |]; [| fi 12 |] |]

let counter = Zobs.Registry.counter_value

let qap_constructions () =
  counter "qap.backend.ntt" + counter "qap.backend.lagrange"

(* Same-digest second connection: the farm serves it from the setup cache
   — zero server-side QAP constructions (the only qap.* construction op
   in the delta is the client's own verifier-side build) — and concurrent
   same-digest clients all verify. *)
let test_farm_cache_and_concurrency () =
  Test_serve.with_tracing @@ fun () ->
  with_farm ~max_conns:5 @@ fun addr ->
  let r1 = run_client ~seed:"farm-client-1" addr in
  Alcotest.(check bool) "first client verdicts" true (Argument.all_accepted r1);
  let built_cold = counter "farm.setup.built" in
  Alcotest.(check int) "cold connection built the QAP once" 1 built_cold;
  let qap_before = qap_constructions () in
  let r2 = run_client ~seed:"farm-client-2" addr in
  Alcotest.(check bool) "second client verdicts" true (Argument.all_accepted r2);
  Alcotest.(check int) "warm session: zero server-side QAP constructions" (qap_before + 1)
    (qap_constructions ());
  Alcotest.(check int) "nothing rebuilt" built_cold (counter "farm.setup.built");
  (* three more clients at once, same digest *)
  let domains =
    Array.init 3 (fun i ->
        Domain.spawn (fun () -> run_client ~seed:(Printf.sprintf "farm-conc-%d" i) addr))
  in
  Array.iteri
    (fun i d ->
      Alcotest.(check bool)
        (Printf.sprintf "concurrent client %d verdicts" i)
        true
        (Argument.all_accepted (Domain.join d)))
    domains;
  let shed, hits, misses, depth = Znet.Svcstats.farm_totals () in
  Alcotest.(check int) "nothing shed" 0 shed;
  Alcotest.(check int) "one cache miss (the cold build)" 1 misses;
  Alcotest.(check int) "four warm sessions hit" 4 hits;
  Alcotest.(check int) "queue drained" 0 depth;
  let a, act, completed, failed, _, _ = Znet.Svcstats.totals () in
  Alcotest.(check int) "all five accepted" 5 a;
  Alcotest.(check int) "none active" 0 act;
  Alcotest.(check int) "all five completed" 5 completed;
  Alcotest.(check int) "none failed" 0 failed;
  let prom = Znet.Svcstats.prometheus () in
  List.iter
    (fun series ->
      Alcotest.(check bool) (series ^ " exposed") true (Test_serve.contains prom series))
    [
      "zaatar_server_setup_cache_hits_total 4";
      "zaatar_server_setup_cache_misses_total 1";
      "zaatar_server_connections_shed_total 0";
      "zaatar_server_queue_depth";
      "zaatar_server_session_latency_ms{quantile=\"0.99\"}";
    ]

(* A byte bound that fits exactly one entry: alternating digests evict
   each other (LRU), so every connection misses and rebuilds. *)
let test_farm_eviction_under_tiny_bound () =
  Test_serve.with_tracing @@ fun () ->
  let one_entry =
    let q = Qapb.of_r1cs ~backend:config.Argument.qap_backend square_plus_3.Argument.r1cs in
    Zfarm.Farm.approx_qap_bytes q
  in
  let fconfig =
    { Zfarm.Farm.default with arg_config = config; setup_cache_bytes = one_entry + (one_entry / 2) }
  in
  with_farm ~fconfig ~max_conns:3 @@ fun addr ->
  let r1 = run_client ~seed:"evict-1" addr in
  let r2 = run_client ~comp:cube ~seed:"evict-2" addr in
  let r3 = run_client ~seed:"evict-3" addr in
  List.iter (fun r -> Alcotest.(check bool) "verdicts" true (Argument.all_accepted r)) [ r1; r2; r3 ];
  let _, hits, misses, _ = Znet.Svcstats.farm_totals () in
  Alcotest.(check int) "every connection missed" 3 misses;
  Alcotest.(check int) "no hits under the tiny bound" 0 hits;
  Alcotest.(check int) "rebuilt each time" 3 (counter "farm.setup.built")

(* Verifier pump with a barrier after the Hello_ok, so the test can hold
   two sessions in flight while a third connection arrives. *)
let pump_with_pause comp ~seed ~pause addr =
  let conn = Znet.connect addr in
  Fun.protect ~finally:(fun () -> Znet.close conn) @@ fun () ->
  let prg = Chacha.Prg.create ~seed () in
  let vs = Argument.Verifier_session.create ~config comp ~prg ~inputs:[| [| fi 4 |] |] in
  let codec = Argument.Verifier_session.codec vs in
  Znet.send conn (Zwire.encode ~codec (Argument.Verifier_session.initial vs));
  let first = Zwire.decode ~codec (Znet.recv conn) in
  pause ();
  let rec go m =
    match Argument.Verifier_session.on_msg vs m with
    | `Send m' ->
      Znet.send conn (Zwire.encode ~codec m');
      go (Zwire.decode ~codec (Znet.recv conn))
    | `Finished (Some m') -> Znet.send conn (Zwire.encode ~codec m')
    | `Finished None -> ()
  in
  go first;
  Argument.Verifier_session.result vs

let spin_until ?(timeout_s = 10.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  while not (pred ()) do
    if Unix.gettimeofday () > deadline then Alcotest.failf "timed out waiting for %s" what;
    Unix.sleepf 0.005
  done

(* --max-sessions 2, no accept queue: a third concurrent client is shed
   with the busy/retry-after reply while the two in-flight sessions run
   to correct verdicts. *)
let test_farm_overload_busy () =
  let fconfig =
    { Zfarm.Farm.default with arg_config = config; max_sessions = 2; accept_queue = 0 }
  in
  with_farm ~fconfig ~max_conns:2 @@ fun addr ->
  let in_flight = Atomic.make 0 and release = Atomic.make false in
  let pause () =
    Atomic.incr in_flight;
    spin_until "release" (fun () -> Atomic.get release)
  in
  let clients =
    Array.init 2 (fun i ->
        Domain.spawn (fun () ->
            pump_with_pause square_plus_3 ~seed:(Printf.sprintf "hold-%d" i) ~pause addr))
  in
  spin_until "two sessions in flight" (fun () -> Atomic.get in_flight = 2);
  (* third client: shed at accept, before any protocol exchange *)
  let t0 = Unix.gettimeofday () in
  let conn = Znet.connect addr in
  let reply = Zwire.decode (Znet.recv conn) in
  let waited = Unix.gettimeofday () -. t0 in
  Znet.close conn;
  Alcotest.(check bool) "third client got busy" true (Zwire.is_busy reply);
  (match reply with
  | Zwire.Error_msg s ->
    Alcotest.(check (option int)) "retry-after hint" (Some fconfig.Zfarm.Farm.busy_retry_ms)
      (Zwire.retry_after_of_error s)
  | _ -> Alcotest.fail "expected Error_msg");
  Alcotest.(check bool) "shed promptly" true (waited < 2.0);
  Atomic.set release true;
  Array.iteri
    (fun i d ->
      Alcotest.(check bool)
        (Printf.sprintf "held client %d still verifies" i)
        true
        (Argument.all_accepted (Domain.join d)))
    clients;
  let shed, _, _, _ = Znet.Svcstats.farm_totals () in
  Alcotest.(check int) "shed accounted distinctly" 1 shed;
  let _, _, completed, failed, decode_errors, _ = Znet.Svcstats.totals () in
  Alcotest.(check int) "two completed" 2 completed;
  Alcotest.(check int) "no failures" 0 failed;
  Alcotest.(check int) "shed is not a decode error" 0 decode_errors

(* Flight recorder end to end: a farm with --trace-dir and a 1 ms slow
   threshold serves one traced client, then must have dumped (a) a
   Chrome-trace sidecar carrying the verifier's trace id — which
   trace-merge accepts alongside the verifier's own trace — and (b) a
   JSONL forensic bundle (every session outruns 1 ms) whose lines all
   parse and whose header carries the outcome. *)
let test_farm_flight_sidecars () =
  Test_serve.with_tracing @@ fun () ->
  let dir = Test_serve.temp_dir () in
  let fconfig =
    { Zfarm.Farm.default with arg_config = config; trace_dir = Some dir; slow_session_ms = 1 }
  in
  let trace_id = Zobs.mint_trace_id () in
  with_farm ~fconfig ~max_conns:1 (fun addr ->
      let prg = Chacha.Prg.create ~seed:"flight-e2e" () in
      let r =
        Remote.run_connect ~config ~trace_id ~addr square_plus_3 ~prg
          ~inputs:[| [| fi 5 |]; [| fi 12 |] |]
      in
      Alcotest.(check bool) "traced client verdicts" true (Argument.all_accepted r));
  (* the farm loop has exited (with_farm joined it), so the dumps are on disk *)
  let sidecar = Filename.concat dir "prover_conn0.json" in
  Alcotest.(check bool) "sidecar written" true (Sys.file_exists sidecar);
  let j = Zobs.Json.parse (Test_serve.read_file sidecar) in
  (match Option.bind (Zobs.Json.member "otherData" j) (Zobs.Json.member "trace_id") with
  | Some id ->
    Alcotest.(check (option string)) "sidecar carries the verifier's trace id" (Some trace_id)
      (Zobs.Json.to_str id)
  | None -> Alcotest.fail "sidecar has no trace id");
  (match Option.bind (Zobs.Json.member "traceEvents" j) Zobs.Json.to_arr with
  | Some evs -> Alcotest.(check bool) "sidecar has slices" true (List.length evs > 1)
  | None -> Alcotest.fail "sidecar has no traceEvents");
  (* merge with the verifier's own trace — same id, so trace-merge accepts *)
  let verifier_trace = Filename.concat dir "verifier.json" in
  Zobs.Sink.write_chrome_trace verifier_trace;
  let merged = Filename.concat dir "merged.json" in
  Zobs.Sink.merge_chrome_trace_files ~out:merged [ verifier_trace; sidecar ];
  let mj = Zobs.Json.parse (Test_serve.read_file merged) in
  (match Option.bind (Zobs.Json.member "otherData" mj) (Zobs.Json.member "trace_id") with
  | Some id ->
    Alcotest.(check (option string)) "merged trace keeps the id" (Some trace_id)
      (Zobs.Json.to_str id)
  | None -> Alcotest.fail "merged trace lost its id");
  (* forensic bundle: slow trigger fired, every line parses *)
  let forensic = Filename.concat dir "forensic_conn0.jsonl" in
  Alcotest.(check bool) "forensic written (slow trigger)" true (Sys.file_exists forensic);
  let lines =
    List.filter (fun l -> l <> "")
      (String.split_on_char '\n' (Test_serve.read_file forensic))
  in
  Alcotest.(check bool) "forensic has header + events" true (List.length lines > 1);
  let parsed = List.map Zobs.Json.parse lines in
  let jstr j k = Option.bind (Zobs.Json.member k j) Zobs.Json.to_str in
  let header = List.hd parsed in
  Alcotest.(check (option string)) "header kind" (Some "session") (jstr header "kind");
  Alcotest.(check (option string)) "header outcome" (Some "slow") (jstr header "outcome");
  Alcotest.(check (option string)) "header trace id" (Some trace_id) (jstr header "trace_id");
  List.iter
    (fun l -> Alcotest.(check (option string)) "event line" (Some "event") (jstr l "kind"))
    (List.tl parsed);
  (* the ring saw the whole lifecycle: accept, phases, frames, finish *)
  let types = List.filter_map (fun l -> jstr l "type") (List.tl parsed) in
  List.iter
    (fun t ->
      Alcotest.(check bool) (t ^ " recorded") true (List.mem t types))
    [ "mark.accepted"; "phase.hello"; "frame.read"; "frame.write"; "mark.finished" ]

let suite =
  [
    Alcotest.test_case "setup cache: LRU within a byte bound" `Quick test_cache_lru;
    Alcotest.test_case "wire: busy/retry-after convention" `Quick test_busy_wire;
    Alcotest.test_case "znet: resumable frame reader" `Quick test_frame_reader;
    Alcotest.test_case "farm: warm sessions skip setup, concurrent clients verify" `Slow
      test_farm_cache_and_concurrency;
    Alcotest.test_case "farm: LRU eviction under a tiny cache bound" `Slow
      test_farm_eviction_under_tiny_bound;
    Alcotest.test_case "farm: overload sheds busy, in-flight sessions verify" `Slow
      test_farm_overload_busy;
    Alcotest.test_case "farm: flight sidecars merge, forensic bundle on slow" `Slow
      test_farm_flight_sidecars;
  ]
