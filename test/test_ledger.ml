open Fieldlib

(* Zledger: the op-level cost ledger (DESIGN.md §12). Exact commit-phase
   op counts against the Costmodel predictions, per-phase attribution,
   --domains independence of the merged per-domain counters, folded-stack
   export well-formedness, and the Prometheus gc_*/ledger_* families. *)

let with_ledger f =
  Zobs.reset ();
  Zobs.enable ();
  Fun.protect ~finally:(fun () -> Zobs.disable (); Zobs.reset ()) f

let ctx = Fp.create Primes.p127

(* (name, value) pairs with only the op vector, for order-insensitive
   comparison of two ledgers. *)
let op_lists () =
  List.map
    (fun (name, (p : Zobs.Ledger.phase)) -> (name, Zobs.Ledger.ops_to_list p.Zobs.Ledger.ops))
    (Zobs.Ledger.phases ())

let commit_tests =
  [
    Alcotest.test_case "commit phase: e/h/f match the model exactly" `Quick (fun () ->
        with_ledger (fun () ->
            (* A dense commitment for a hand-picked |u|: the model predicts
               e = |u| encryptions for the request, h = beta * |u|
               homomorphic steps for beta dense proof vectors, and zero
               PCP-field multiplications anywhere in the phase. *)
            let sizes =
              {
                Costmodel.Model.z_ginger = 10;
                c_ginger = 5;
                z_zaatar = 10;
                c_zaatar = 5;
                k = 0;
                k2 = 0;
                n_x = 2;
                n_y = 2;
                t_local = 0.0;
              }
            in
            let u_len = Costmodel.Model.u_zaatar sizes in
            let beta = 3 in
            let predicted = Costmodel.Model.commit_phase_ops sizes ~beta in
            Alcotest.(check int) "model e" u_len predicted.Costmodel.Model.e_count;
            Alcotest.(check int) "model h" (beta * u_len) predicted.Costmodel.Model.h_count;
            let grp = Zcrypto.Group.cached ~field_order:Primes.p127 ~p_bits:160 () in
            let prg = Chacha.Prg.create ~seed:"ledger commit test" () in
            let before = Zobs.Ledger.snapshot () in
            let ops_of f =
              f ();
              let d = Zobs.Ledger.sub_ops (Zobs.Ledger.snapshot ()) before in
              d
            in
            let delta =
              ops_of (fun () ->
                  let req, _vs =
                    Commitment.Commit.commit_request ctx grp prg ~len:u_len
                  in
                  for _ = 1 to beta do
                    (* dense: every entry nonzero, so every entry is one
                       homomorphic accumulate step *)
                    let u =
                      Array.init u_len (fun _ -> Chacha.Prg.field_nonzero ctx prg)
                    in
                    ignore (Commitment.Commit.prover_commit req u)
                  done)
            in
            Alcotest.(check int) "ledgered e" predicted.Costmodel.Model.e_count
              delta.Zobs.Ledger.e;
            Alcotest.(check int) "ledgered h" predicted.Costmodel.Model.h_count
              delta.Zobs.Ledger.h;
            Alcotest.(check int) "ledgered f" predicted.Costmodel.Model.f_count
              delta.Zobs.Ledger.f;
            Alcotest.(check int) "no decryptions" 0 delta.Zobs.Ledger.d));
    Alcotest.test_case "with_phase attributes ops, seconds and GC" `Quick (fun () ->
        with_ledger (fun () ->
            let a = Chacha.Prg.field_nonzero ctx (Chacha.Prg.create ~seed:"wp" ()) in
            Zobs.Ledger.with_phase "phase_test" (fun () ->
                for _ = 1 to 10 do
                  ignore (Fp.mul ctx a a)
                done;
                (* Gc.quick_stat only reflects completed minor cycles, so
                   allocate well past the minor heap to force some *)
                for _ = 1 to 10 do
                  ignore (Sys.opaque_identity (List.init 100_000 (fun i -> (i, i))))
                done);
            let p = Option.get (Zobs.Ledger.phase "phase_test") in
            Alcotest.(check int) "f ops" 10 p.Zobs.Ledger.ops.Zobs.Ledger.f;
            Alcotest.(check int) "calls" 1 p.Zobs.Ledger.calls;
            Alcotest.(check bool) "seconds >= 0" true (p.Zobs.Ledger.seconds >= 0.0);
            Alcotest.(check bool) "allocated minor words" true
              (p.Zobs.Ledger.gc.Zobs.Span.minor_words > 0.0);
            (* a phase the code never opened stays absent *)
            Alcotest.(check bool) "unknown phase" true (Zobs.Ledger.phase "nope" = None)));
    Alcotest.test_case "audit_pass gates only gated rows" `Quick (fun () ->
        let row ~gated ~pass =
          {
            Costmodel.Model.phase = "p";
            op = "f";
            predicted = 1.0;
            ledgered = 1;
            ratio = 1.0;
            lo = 1.0;
            hi = 1.0;
            gated;
            pass;
            note = "";
          }
        in
        Alcotest.(check bool) "informational breach passes" true
          (Costmodel.Model.audit_pass [ row ~gated:false ~pass:false ]);
        Alcotest.(check bool) "gated breach fails" false
          (Costmodel.Model.audit_pass [ row ~gated:true ~pass:false; row ~gated:true ~pass:true ]);
        Alcotest.(check bool) "empty passes" true (Costmodel.Model.audit_pass []));
  ]

(* The ledger must be --domains independent: the per-domain counter shards
   merge deterministically and Pool fan-outs join inside their phase, so
   the same seeds give the identical per-phase op vector at any domain
   count. *)
let domains_tests =
  [
    Alcotest.test_case "per-phase op vectors identical at --domains 1 and 4" `Slow (fun () ->
        let run domains =
          with_ledger (fun () ->
              let app = Apps.Registry.pam ~scale:1 in
              let compiled = Apps.Glue.compile ctx app in
              let comp = Apps.Glue.computation_of compiled in
              let prg = Chacha.Prg.create ~seed:"ledger domains test" () in
              let inputs =
                Array.init 2 (fun _ ->
                    Apps.Glue.field_inputs ctx (app.Apps.App_def.gen_inputs prg))
              in
              let config =
                {
                  Argsys.Argument.params = Pcp.Pcp_zaatar.test_params;
                  p_bits = 160;
                  strategy = Argsys.Argument.Honest;
                  domains;
                  qap_backend = Qapb.Auto;
                }
              in
              let result = Argsys.Argument.run_batch ~config comp ~prg ~inputs in
              Alcotest.(check bool) "accepted" true (Argsys.Argument.all_accepted result);
              op_lists ())
        in
        let one = run 1 and four = run 4 in
        Alcotest.(check int) "same phase set" (List.length one) (List.length four);
        List.iter2
          (fun (n1, ops1) (n2, ops2) ->
            Alcotest.(check string) "phase name" n1 n2;
            List.iter2
              (fun (op, v1) (_, v2) ->
                Alcotest.(check int) (Printf.sprintf "%s.%s" n1 op) v1 v2)
              ops1 ops2)
          one four);
  ]

let export_tests =
  [
    Alcotest.test_case "folded stacks: well-formed lines, nested paths" `Quick (fun () ->
        with_ledger (fun () ->
            Zobs.Span.with_ ~name:"outer" (fun () ->
                Unix.sleepf 0.002;
                Zobs.Span.with_ ~name:"inner" (fun () -> Unix.sleepf 0.002));
            let folded = Zobs.Sink.folded_stacks () in
            Alcotest.(check bool) "non-empty" true (String.length folded > 0);
            let lines = String.split_on_char '\n' folded |> List.filter (fun l -> l <> "") in
            List.iter
              (fun l ->
                match String.rindex_opt l ' ' with
                | None -> Alcotest.failf "no weight in %S" l
                | Some i ->
                  let weight = String.sub l (i + 1) (String.length l - i - 1) in
                  (match int_of_string_opt weight with
                  | Some w -> Alcotest.(check bool) "weight positive" true (w > 0)
                  | None -> Alcotest.failf "weight %S not an integer" weight))
              lines;
            Alcotest.(check bool) "nested path present" true
              (List.exists (fun l -> String.length l >= 11 && String.sub l 0 11 = "outer;inner") lines)));
    Alcotest.test_case "Prometheus exposition: gc_* and ledger_* families" `Quick (fun () ->
        with_ledger (fun () ->
            let a = Chacha.Prg.field_nonzero ctx (Chacha.Prg.create ~seed:"prom" ()) in
            Zobs.Ledger.with_phase "prom_phase" (fun () ->
                for _ = 1 to 7 do
                  ignore (Fp.mul ctx a a)
                done);
            let body = Zobs.Prometheus.render () in
            let contains needle =
              let nl = String.length needle and bl = String.length body in
              let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
              go 0
            in
            List.iter
              (fun needle ->
                Alcotest.(check bool) needle true (contains needle))
              [
                "# TYPE zaatar_gc_minor_words_total counter";
                "zaatar_gc_heap_words";
                "zaatar_ledger_ops_total{op=\"f\"}";
                "zaatar_ledger_phase_ops_total{phase=\"prom_phase\",op=\"f\"} 7";
                "zaatar_ledger_phase_seconds_total{phase=\"prom_phase\"}";
              ]));
  ]

let suite = commit_tests @ domains_tests @ export_tests
