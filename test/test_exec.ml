(* Zexec, the witness-solving interpreter: Tonelli–Shanks square roots,
   each propagation rule against hand-built systems, the error cases
   (Unsat / Stuck), agreement with the compiler's solver on compiled
   programs over several fields, and the zero-default convention. *)

open Fieldlib
open Constr

let ctx = Fp.create Primes.p127_ntt

let fi n = Fp.of_int ctx n

(* A quadratic-form system over [n] variables (plus w0) from (a, b, c)
   triples given as (var, int) coefficient lists; var 0 is the constant. *)
let system ?(field = ctx) ~num_vars ~num_z rows =
  let lc terms =
    List.fold_left (fun acc (v, c) -> Lincomb.add_term field acc v (Fp.of_int field c)) Lincomb.zero terms
  in
  {
    R1cs.field;
    num_vars;
    num_z;
    constraints = Array.of_list (List.map (fun (a, b, c) -> { R1cs.a = lc a; b = lc b; c = lc c }) rows);
  }

(* ---- sqrt ---- *)

let test_sqrt () =
  List.iter
    (fun prime ->
      let ctx = Fp.create prime in
      let prg = Chacha.Prg.create ~seed:"sqrt" () in
      for _ = 1 to 50 do
        let x = Chacha.Prg.field ctx prg in
        let sq = Fp.mul ctx x x in
        match Zexec.Exec.sqrt ctx sq with
        | None -> Alcotest.fail "square has no root"
        | Some r ->
          Alcotest.(check bool) "root squares back" true
            (Fp.equal (Fp.mul ctx r r) sq)
      done;
      (* exactly (p-1)/2 non-residues exist; hit one by scanning *)
      let rec nonresidue n =
        if n > 100 then Alcotest.fail "no non-residue in 2..100"
        else
          let x = Fp.of_int ctx n in
          match Zexec.Exec.sqrt ctx x with
          | None -> x
          | Some r ->
            Alcotest.(check bool) "claimed root is real" true
              (Fp.equal (Fp.mul ctx r r) x);
            nonresidue (n + 1)
      in
      ignore (nonresidue 2);
      Alcotest.(check bool) "sqrt 0 = 0" true
        (match Zexec.Exec.sqrt ctx Fp.zero with Some r -> Fp.is_zero r | None -> false))
    [ Primes.p61; Primes.p127; Primes.p127_ntt ]

(* ---- individual propagation rules ---- *)

(* w1 pinned linearly from the input: 1 * (x + 1) = w1, x = 5 -> w1 = 6. *)
let test_linear_pin () =
  let sys = system ~num_vars:2 ~num_z:1 [ ([ (0, 1) ], [ (2, 1); (0, 1) ], [ (1, 1) ]) ] in
  match Zexec.Exec.solve sys ~inputs:[| fi 5 |] with
  | Error e -> Alcotest.fail (Zexec.Exec.error_to_text e)
  | Ok (w, st) ->
    Alcotest.(check bool) "w1 = 6" true (Fp.equal w.(1) (fi 6));
    Alcotest.(check int) "one pin" 1 st.Zexec.Exec.pinned

(* Division through a known factor: w1 * x = 12 with x = 3 -> w1 = 4. *)
let test_div_pin () =
  let sys = system ~num_vars:2 ~num_z:1 [ ([ (1, 1) ], [ (2, 1) ], [ (0, 12) ]) ] in
  match Zexec.Exec.solve sys ~inputs:[| fi 3 |] with
  | Error e -> Alcotest.fail (Zexec.Exec.error_to_text e)
  | Ok (w, _) -> Alcotest.(check bool) "w1 = 4" true (Fp.equal w.(1) (fi 4))

(* A known-zero factor annihilates the product: 0 * (w1 + w2) = w1 with
   w2 free. w1 must vanish alone; w2 defaults to zero. *)
let test_zero_factor () =
  let sys =
    system ~num_vars:3 ~num_z:2
      [ ([ (3, 1) ], [ (1, 1); (2, 1) ], [ (1, 1) ]) ]
  in
  match Zexec.Exec.solve sys ~inputs:[| fi 0 |] with
  | Error e -> Alcotest.fail (Zexec.Exec.error_to_text e)
  | Ok (w, st) ->
    Alcotest.(check bool) "w1 = 0" true (Fp.is_zero w.(1));
    Alcotest.(check int) "w2 defaulted" 1 st.Zexec.Exec.defaulted

(* The bit rule: x + 4 = 4*b2 + 2*b1 + 1*b0 with booleanity rows. For
   x = 1: 5 = 101b. *)
let test_bits () =
  let bool_row v = ([ (v, 1) ], [ (v, 1) ], [ (v, 1) ]) in
  let sys =
    system ~num_vars:4 ~num_z:3
      [
        bool_row 1;
        bool_row 2;
        bool_row 3;
        ([ (0, 1) ], [ (4, 1); (0, 4) ], [ (1, 1); (2, 2); (3, 4) ]);
      ]
  in
  match Zexec.Exec.solve sys ~inputs:[| fi 1 |] with
  | Error e -> Alcotest.fail (Zexec.Exec.error_to_text e)
  | Ok (w, _) ->
    Alcotest.(check bool) "b0 = 1" true (Fp.equal w.(1) Fp.one);
    Alcotest.(check bool) "b1 = 0" true (Fp.is_zero w.(2));
    Alcotest.(check bool) "b2 = 1" true (Fp.equal w.(3) Fp.one)

(* Degree-2 with a double root pins: (w1 - x)^2 = 0 -> w1 = x. *)
let test_quadratic_double_root () =
  let row = ([ (1, 1); (2, -1) ], [ (1, 1); (2, -1) ], []) in
  let sys = system ~num_vars:2 ~num_z:1 [ row ] in
  match Zexec.Exec.solve sys ~inputs:[| fi 7 |] with
  | Error e -> Alcotest.fail (Zexec.Exec.error_to_text e)
  | Ok (w, _) -> Alcotest.(check bool) "w1 = 7" true (Fp.equal w.(1) (fi 7))

(* Two distinct roots must not be guessed: w1 * w1 = 4 alone is
   under-determined (w1 could be 2 or -2) -> Stuck, with the row counted
   ambiguous. *)
let test_quadratic_ambiguous () =
  let sys = system ~num_vars:1 ~num_z:1 [ ([ (1, 1) ], [ (1, 1) ], [ (0, 4) ]) ] in
  match Zexec.Exec.solve sys ~inputs:[||] with
  | Ok _ -> Alcotest.fail "two-root quadratic must not solve"
  | Error (Zexec.Exec.Unsat _) -> Alcotest.fail "ambiguity is not unsatisfiability"
  | Error (Zexec.Exec.Stuck { vars; _ }) ->
    Alcotest.(check (list int)) "w1 is the stuck variable" [ 1 ] vars

(* An inconsistent row is Unsat with the row index. *)
let test_unsat () =
  let sys = system ~num_vars:1 ~num_z:0 [ ([ (0, 1) ], [ (1, 1) ], [ (1, 1); (0, 3) ]) ] in
  (* x * 1 = x + 3 *)
  match Zexec.Exec.solve sys ~inputs:[| fi 2 |] with
  | Error (Zexec.Exec.Unsat { row; _ }) -> Alcotest.(check int) "row 0" 0 row
  | Error (Zexec.Exec.Stuck _) -> Alcotest.fail "expected Unsat, got Stuck"
  | Ok _ -> Alcotest.fail "contradiction accepted"

(* A free variable that zero-defaults into a *satisfied* system is fine:
   w1 * x = 0 with x = 0 leaves w1 free, and 0 works. *)
let test_zero_default_ok () =
  let sys = system ~num_vars:2 ~num_z:1 [ ([ (1, 1) ], [ (2, 1) ], []) ] in
  match Zexec.Exec.solve sys ~inputs:[| fi 0 |] with
  | Error e -> Alcotest.fail (Zexec.Exec.error_to_text e)
  | Ok (w, st) ->
    Alcotest.(check bool) "w1 = 0" true (Fp.is_zero w.(1));
    Alcotest.(check int) "defaulted" 1 st.Zexec.Exec.defaulted

(* ...but zero-defaulting through a violated row is Stuck, not a wrong
   answer: w1 * w1 = 4 again, via the ZR008 fixture this time. *)
let test_zr008_fixture_stuck () =
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let sys = Serialize.system_of_string (read_file "lint_fixtures/zr008_multiroot.r1cs") in
  (* the fixture's second row demands w2 = 5, so seed it consistently *)
  match Zexec.Exec.solve sys ~inputs:[| Fp.of_int sys.R1cs.field 5 |] with
  | Ok _ -> Alcotest.fail "multi-root fixture must not solve"
  | Error (Zexec.Exec.Unsat _) -> Alcotest.fail "fixture is under-determined, not unsatisfiable"
  | Error (Zexec.Exec.Stuck _) -> ()

let test_too_many_inputs () =
  let sys = system ~num_vars:2 ~num_z:1 [ ([ (0, 1) ], [ (2, 1) ], [ (1, 1) ]) ] in
  Alcotest.check_raises "inputs beyond the IO block rejected"
    (Invalid_argument "Exec.solve: 3 inputs for a system with 1 IO variables") (fun () ->
      ignore (Zexec.Exec.solve sys ~inputs:[| fi 1; fi 2; fi 3 |]))

let test_error_text () =
  let u = Zexec.Exec.Unsat { row = 12; detail = "boom" } in
  Alcotest.(check string) "unsat text" "row 12: unsatisfiable: boom" (Zexec.Exec.error_to_text u);
  Alcotest.(check string) "unsat text with file" "f.r1cs: row 12: unsatisfiable: boom"
    (Zexec.Exec.error_to_text ~file:"f.r1cs" u)

(* ---- agreement with the compiler's solver ---- *)

(* Shared with `zaatar exec --check`: on every benchmark app the
   interpreter must reproduce the compiled witness bit for bit. Run a
   reduced version here (one app, several trials, two fields — including
   the Mersenne prime, whose wrapping powers of two 2^127 = 1 once broke
   the bit rule's exponent table). *)
let test_differential () =
  List.iter
    (fun prime ->
      let ctx = Fp.create prime in
      let prg = Chacha.Prg.create ~seed:"test-exec" () in
      let app = Apps.Registry.by_name "lcs" ~scale:1 in
      let c = Zlang.Compile.compile ~ctx app.Apps.App_def.source in
      let sys = Zlang.Compile.zaatar_r1cs c in
      for _ = 1 to 3 do
        let ints = app.Apps.App_def.gen_inputs prg in
        let finputs = Apps.Glue.field_inputs ctx ints in
        let w1 = c.Zlang.Compile.solve_zaatar finputs in
        match Zexec.Exec.solve sys ~inputs:finputs with
        | Error e -> Alcotest.fail (Zexec.Exec.error_to_text e)
        | Ok (w2, _) ->
          Alcotest.(check int) "witness length" (Array.length w1) (Array.length w2);
          Array.iteri
            (fun v x ->
              if not (Fp.equal x w2.(v)) then
                Alcotest.fail (Printf.sprintf "witness differs at w%d" v))
            w1;
          let outs = Apps.Glue.int_outputs ctx (Zlang.Compile.outputs_zaatar c w2) in
          Alcotest.(check (array int)) "native outputs" (app.Apps.App_def.native ints) outs
      done)
    [ Primes.p127; Primes.p127_ntt ]

let test_outputs_slice () =
  (* outputs = the IO slots after the inputs *)
  let sys = system ~num_vars:4 ~num_z:1 [ ([ (0, 1) ], [ (2, 1) ], [ (1, 1) ]) ] in
  let w = [| Fp.one; fi 9; fi 2; fi 3; fi 4 |] in
  let outs = Zexec.Exec.outputs sys ~num_inputs:1 w in
  Alcotest.(check int) "two outputs" 2 (Array.length outs);
  Alcotest.(check bool) "first output" true (Fp.equal outs.(0) (fi 3));
  Alcotest.(check bool) "second output" true (Fp.equal outs.(1) (fi 4))

let suite =
  [
    Alcotest.test_case "sqrt: Tonelli-Shanks over three primes" `Quick test_sqrt;
    Alcotest.test_case "rule: linear pin" `Quick test_linear_pin;
    Alcotest.test_case "rule: division through a known factor" `Quick test_div_pin;
    Alcotest.test_case "rule: zero factor annihilates" `Quick test_zero_factor;
    Alcotest.test_case "rule: bit decomposition" `Quick test_bits;
    Alcotest.test_case "rule: quadratic double root pins" `Quick test_quadratic_double_root;
    Alcotest.test_case "quadratic with two roots is Stuck" `Quick test_quadratic_ambiguous;
    Alcotest.test_case "contradiction is Unsat with row provenance" `Quick test_unsat;
    Alcotest.test_case "free variables zero-default" `Quick test_zero_default_ok;
    Alcotest.test_case "ZR008 fixture is Stuck" `Quick test_zr008_fixture_stuck;
    Alcotest.test_case "input arity is validated" `Quick test_too_many_inputs;
    Alcotest.test_case "error rendering" `Quick test_error_text;
    Alcotest.test_case "agrees with the compiled witness (two fields)" `Quick test_differential;
    Alcotest.test_case "outputs slice the IO block" `Quick test_outputs_slice;
  ]
