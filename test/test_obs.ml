open Fieldlib

(* The Zobs observability library: span nesting and exclusive-time
   arithmetic, counter accumulation across domains, Chrome-trace export
   well-formedness (via the in-house JSON parser), and the guarantee that
   the disabled path records nothing. *)

(* Every test runs with a clean slate and leaves tracing off so the other
   suites keep the single-atomic-load fast path. *)
let with_tracing f =
  Zobs.reset ();
  Zobs.enable ();
  Fun.protect ~finally:(fun () -> Zobs.disable (); Zobs.reset ()) f

let span_tests =
  [
    Alcotest.test_case "nested spans: totals, counts and exclusive time" `Quick (fun () ->
        with_tracing (fun () ->
            Zobs.Span.with_ ~name:"outer" (fun () ->
                Unix.sleepf 0.01;
                Zobs.Span.with_ ~name:"inner" (fun () -> Unix.sleepf 0.02);
                Zobs.Span.with_ ~name:"inner" (fun () -> Unix.sleepf 0.02));
            let outer = Option.get (Zobs.Span.stats "outer") in
            let inner = Option.get (Zobs.Span.stats "inner") in
            Alcotest.(check int) "outer count" 1 outer.Zobs.Span.count;
            Alcotest.(check int) "inner count" 2 inner.Zobs.Span.count;
            Alcotest.(check bool) "inner total >= 2 sleeps" true (inner.Zobs.Span.total >= 0.04);
            Alcotest.(check bool) "outer total covers children" true
              (outer.Zobs.Span.total >= inner.Zobs.Span.total +. 0.01);
            (* exclusive = duration minus direct children, within scheduling
               slop *)
            let expected_excl = outer.Zobs.Span.total -. inner.Zobs.Span.total in
            Alcotest.(check bool) "exclusive math" true
              (Float.abs (outer.Zobs.Span.exclusive -. expected_excl) < 1e-9);
            Alcotest.(check bool) "inner exclusive = total (leaf)" true
              (Float.abs (inner.Zobs.Span.exclusive -. inner.Zobs.Span.total) < 1e-9)));
    Alcotest.test_case "span returns the body's value and survives exceptions" `Quick (fun () ->
        with_tracing (fun () ->
            Alcotest.(check int) "value" 42 (Zobs.Span.with_ ~name:"v" (fun () -> 42));
            (try Zobs.Span.with_ ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
            (* The frame was popped: a sibling span is recorded at depth 0 and
               the aggregate for "boom" still exists. *)
            Alcotest.(check bool) "boom recorded" true (Zobs.Span.stats "boom" <> None);
            Zobs.Span.with_ ~name:"after" (fun () -> ());
            let ev =
              List.find (fun (e : Zobs.Span.event) -> e.Zobs.Span.name = "after") (Zobs.Span.events_snapshot ())
            in
            Alcotest.(check int) "depth back to 0" 0 ev.Zobs.Span.depth));
  ]

let counter_tests =
  [
    Alcotest.test_case "counter accumulates across pool domains" `Quick (fun () ->
        with_tracing (fun () ->
            let c = Zobs.Counter.make "test.pool" in
            let arr = Array.init 1000 (fun i -> i) in
            ignore (Dompool.Pool.map ~domains:4 (fun _ -> Zobs.Counter.incr c) arr);
            Alcotest.(check int) "1000 increments" 1000 (Zobs.Counter.value c)));
    Alcotest.test_case "instrumented field ops tick their counters" `Quick (fun () ->
        with_tracing (fun () ->
            let ctx = Fp.create Primes.p127 in
            let a = Fp.of_int ctx 17 and b = Fp.of_int ctx 23 in
            for _ = 1 to 10 do
              ignore (Fp.mul ctx a b)
            done;
            let v = List.assoc "fp.mul" (Zobs.Registry.counter_values ()) in
            Alcotest.(check bool) "fp.mul >= 10" true (v >= 10)));
    Alcotest.test_case "histogram buckets by powers of two" `Quick (fun () ->
        with_tracing (fun () ->
            let h = Zobs.Histogram.make "test.hist" in
            List.iter (Zobs.Histogram.observe h) [ 0; 1; 2; 3; 1024; 1025 ];
            Alcotest.(check int) "total" 6 (Zobs.Histogram.total h);
            let snap = Zobs.Histogram.snapshot h in
            Alcotest.(check int) "1024-bucket holds both" 2 (List.assoc 1024 snap);
            Alcotest.(check int) "singleton 0 bucket" 1 (List.assoc 0 snap)));
  ]

let disabled_tests =
  [
    Alcotest.test_case "disabled: counters and spans record nothing" `Quick (fun () ->
        Zobs.disable ();
        Zobs.reset ();
        let c = Zobs.Counter.make "test.off" in
        Zobs.Counter.incr c;
        Zobs.Counter.add c 100;
        Alcotest.(check int) "counter stays 0" 0 (Zobs.Counter.value c);
        let h = Zobs.Histogram.make "test.off.hist" in
        Zobs.Histogram.observe h 42;
        Alcotest.(check int) "histogram stays empty" 0 (Zobs.Histogram.total h);
        Alcotest.(check int) "span body still runs" 7 (Zobs.Span.with_ ~name:"off" (fun () -> 7));
        Alcotest.(check bool) "no span recorded" true (Zobs.Span.stats "off" = None);
        (* Instrumented production code records nothing either. *)
        let ctx = Fp.create Primes.p127 in
        ignore (Fp.mul ctx (Fp.of_int ctx 3) (Fp.of_int ctx 5));
        Alcotest.(check int) "fp.mul stays 0" 0 (List.assoc "fp.mul" (Zobs.Registry.counter_values ())));
  ]

let chrome_trace_tests =
  [
    Alcotest.test_case "chrome trace export parses back and is well-formed" `Quick (fun () ->
        with_tracing (fun () ->
            Zobs.Span.with_ ~name:"parent" ~attrs:[ ("k", "v") ] (fun () ->
                Zobs.Span.with_ ~name:"child" (fun () -> Unix.sleepf 0.001));
            let path = Filename.temp_file "zobs" ".json" in
            Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
                Zobs.write_chrome_trace path;
                let ic = open_in_bin path in
                let s = really_input_string ic (in_channel_length ic) in
                close_in ic;
                let j = Zobs.Json.parse s in
                let events =
                  Option.get (Option.bind (Zobs.Json.member "traceEvents" j) Zobs.Json.to_arr)
                in
                (* process_name metadata event + the two recorded spans *)
                Alcotest.(check int) "three events" 3 (List.length events);
                let meta, spans =
                  List.partition
                    (fun e ->
                      Zobs.Json.to_str (Option.get (Zobs.Json.member "ph" e)) = Some "M")
                    events
                in
                Alcotest.(check int) "one metadata event" 1 (List.length meta);
                Alcotest.(check int) "two span events" 2 (List.length spans);
                List.iter
                  (fun e ->
                    let field k = Option.get (Zobs.Json.member k e) in
                    Alcotest.(check bool) "has name" true (Zobs.Json.to_str (field "name") <> None);
                    Alcotest.(check (option string)) "complete event" (Some "X")
                      (Zobs.Json.to_str (field "ph"));
                    Alcotest.(check bool) "ts >= 0" true
                      (Option.get (Zobs.Json.to_num (field "ts")) >= 0.0);
                    Alcotest.(check bool) "dur >= 0" true
                      (Option.get (Zobs.Json.to_num (field "dur")) >= 0.0))
                  spans)));
  ]

let json_tests =
  [
    Alcotest.test_case "JSON writer/parser round trip" `Quick (fun () ->
        let open Zobs.Json in
        let v =
          Obj
            [
              ("s", Str "a\"b\\c\n\t");
              ("n", Num 3.5);
              ("i", Num 42.0);
              ("b", Bool true);
              ("z", Null);
              ("a", Arr [ Num 1.0; Str "x"; Obj [ ("k", Bool false) ] ]);
            ]
        in
        Alcotest.(check bool) "round trip" true (parse (to_string v) = v));
    Alcotest.test_case "JSON parser: escapes, unicode, errors" `Quick (fun () ->
        let open Zobs.Json in
        Alcotest.(check (option string)) "unicode escape" (Some "A\xc3\xa9")
          (to_str (parse {|"Aé"|}));
        Alcotest.(check bool) "whitespace tolerated" true
          (parse "  [ 1 , 2 ]  " = Arr [ Num 1.0; Num 2.0 ]);
        let fails s = match parse s with exception Parse_error _ -> true | _ -> false in
        Alcotest.(check bool) "trailing garbage rejected" true (fails "{} x");
        Alcotest.(check bool) "bad literal rejected" true (fails "flase");
        Alcotest.(check bool) "unterminated string rejected" true (fails {|"abc|}));
  ]

let metrics_tests =
  [
    Alcotest.test_case "Metrics.to_list is sorted by phase name" `Quick (fun () ->
        let m = Argsys.Metrics.create () in
        Argsys.Metrics.add m "c" 3.0;
        Argsys.Metrics.add m "a" 1.0;
        Argsys.Metrics.add m "b" 2.0;
        Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ]
          (List.map fst (Argsys.Metrics.to_list m)));
    Alcotest.test_case "Metrics.time also opens a Zobs span" `Quick (fun () ->
        with_tracing (fun () ->
            let m = Argsys.Metrics.create () in
            let r = Argsys.Metrics.time m "phase_x" (fun () -> 5) in
            Alcotest.(check int) "result" 5 r;
            Alcotest.(check bool) "metrics entry" true (Argsys.Metrics.get m "phase_x" >= 0.0);
            let s = Option.get (Zobs.Span.stats "phase_x") in
            Alcotest.(check int) "span recorded" 1 s.Zobs.Span.count));
  ]

let percentile_tests =
  [
    Alcotest.test_case "percentiles: empty, singleton, all-equal" `Quick (fun () ->
        with_tracing (fun () ->
            let pct = Zobs.Histogram.percentile_of_snapshot in
            Alcotest.(check (option int)) "empty histogram" None (pct [] 50.0);
            let one = Zobs.Histogram.make "test.pct.one" in
            Zobs.Histogram.observe one 100;
            let snap = Zobs.Histogram.snapshot one in
            (* 100 lands in the [64, 128) bucket; every percentile of a
               single sample reports that bucket's lower bound. *)
            List.iter
              (fun p -> Alcotest.(check (option int)) (Printf.sprintf "p%.0f" p) (Some 64) (pct snap p))
              [ 0.0; 50.0; 99.0; 100.0 ];
            let eq = Zobs.Histogram.make "test.pct.eq" in
            for _ = 1 to 1000 do
              Zobs.Histogram.observe eq 7
            done;
            let snap = Zobs.Histogram.snapshot eq in
            Alcotest.(check (option int)) "p50 of all-equal" (Some 4) (pct snap 50.0);
            Alcotest.(check (option int)) "p99 of all-equal" (Some 4) (pct snap 99.0)));
    Alcotest.test_case "percentiles split a bimodal distribution" `Quick (fun () ->
        with_tracing (fun () ->
            let h = Zobs.Histogram.make "test.pct.bimodal" in
            for _ = 1 to 90 do
              Zobs.Histogram.observe h 3
            done;
            for _ = 1 to 10 do
              Zobs.Histogram.observe h 5000
            done;
            let snap = Zobs.Histogram.snapshot h in
            let pct = Zobs.Histogram.percentile_of_snapshot in
            Alcotest.(check (option int)) "p50 in the low mode" (Some 2) (pct snap 50.0);
            Alcotest.(check (option int)) "p90 still low" (Some 2) (pct snap 90.0);
            Alcotest.(check (option int)) "p99 in the high mode" (Some 4096) (pct snap 99.0)));
    Alcotest.test_case "percentiles stay coherent under concurrent observers" `Quick (fun () ->
        with_tracing (fun () ->
            let h = Zobs.Histogram.make "test.pct.par" in
            ignore
              (Dompool.Pool.map ~domains:4
                 (fun v -> Zobs.Histogram.observe h v)
                 (Array.init 1000 (fun i -> i mod 32)));
            Alcotest.(check int) "all observed" 1000 (Zobs.Histogram.total h);
            match Zobs.Histogram.percentile h 50.0 with
            | Some v -> Alcotest.(check bool) "p50 within observed range" true (v <= 16)
            | None -> Alcotest.fail "histogram empty after 1000 observations"));
  ]

let contains s affix =
  let n = String.length s and k = String.length affix in
  let rec go i = i + k <= n && (String.sub s i k = affix || go (i + 1)) in
  go 0

let prometheus_tests =
  [
    Alcotest.test_case "render: counters, quantile gauges, extra block" `Quick (fun () ->
        with_tracing (fun () ->
            let c = Zobs.Counter.make "test.prom.hits" in
            Zobs.Counter.add c 41;
            Zobs.Counter.incr c;
            let h = Zobs.Histogram.make "test.prom.lat" in
            List.iter (Zobs.Histogram.observe h) [ 1; 2; 4; 1000 ];
            let text = Zobs.Prometheus.render ~extra:"injected_metric 9\n" () in
            Alcotest.(check bool) "counter line" true (contains text "test_prom_hits 42");
            Alcotest.(check bool) "TYPE comment" true (contains text "# TYPE");
            Alcotest.(check bool) "p50 gauge" true (contains text "test_prom_lat_p50");
            Alcotest.(check bool) "histogram count" true (contains text "test_prom_lat_count 4");
            Alcotest.(check bool) "extra appended" true (contains text "injected_metric 9");
            (* Parse shape: every non-comment line is `name{labels} value`
               with a float-parsable value. *)
            String.split_on_char '\n' text
            |> List.iter (fun line ->
                   if line <> "" && line.[0] <> '#' then
                     match String.rindex_opt line ' ' with
                     | None -> Alcotest.failf "unparsable line %S" line
                     | Some i ->
                       let v = String.sub line (i + 1) (String.length line - i - 1) in
                       if float_of_string_opt v = None then
                         Alcotest.failf "non-numeric value in %S" line)));
  ]

let log_tests =
  [
    Alcotest.test_case "JSONL sink: leveled lines with structured fields" `Quick (fun () ->
        let path = Filename.temp_file "zobs_log" ".jsonl" in
        Fun.protect
          ~finally:(fun () ->
            Zobs.Log.set_sink `Off;
            Zobs.Log.set_level Zobs.Log.Info;
            Sys.remove path)
          (fun () ->
            Zobs.Log.set_sink (`File path);
            Zobs.Log.set_level Zobs.Log.Debug;
            Zobs.Log.info ~fields:[ Zobs.Log.str "peer" "1.2.3.4:5"; Zobs.Log.int "conn" 7 ]
              "connection accepted";
            Zobs.Log.error "boom";
            Zobs.Log.set_level Zobs.Log.Error;
            Zobs.Log.info "suppressed below threshold";
            Zobs.Log.set_sink `Off;
            Zobs.Log.error "dropped after sink off";
            let ic = open_in_bin path in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
            Alcotest.(check int) "two lines survive" 2 (List.length lines);
            let j = Zobs.Json.parse (List.nth lines 0) in
            let str k = Option.bind (Zobs.Json.member k j) Zobs.Json.to_str in
            Alcotest.(check (option string)) "level" (Some "info") (str "level");
            Alcotest.(check (option string)) "msg" (Some "connection accepted") (str "msg");
            Alcotest.(check (option string)) "peer field" (Some "1.2.3.4:5") (str "peer");
            Alcotest.(check (option (float 0.0))) "conn field" (Some 7.0)
              (Option.bind (Zobs.Json.member "conn" j) Zobs.Json.to_num);
            let j2 = Zobs.Json.parse (List.nth lines 1) in
            Alcotest.(check (option string)) "error level" (Some "error")
              (Option.bind (Zobs.Json.member "level" j2) Zobs.Json.to_str)));
  ]

let suite =
  span_tests @ counter_tests @ disabled_tests @ chrome_trace_tests @ json_tests @ metrics_tests
  @ percentile_tests @ prometheus_tests @ log_tests
