(* Zscope (DESIGN.md §15): the farm-native observability layer. Unit
   coverage for the session-latency percentile edge cases (empty ring,
   single sample, wraparound at --recent-cap, shed connections excluded),
   the event-loop health accounting and its renderers, the bounded flight
   recorder ring with its JSONL/Chrome-trace dumps, the sampling wall-clock
   profiler, and the /healthz + /profile HTTP routes. The farm end-to-end
   run lives in Test_farm. *)

let contains = Test_serve.contains
let feq = Alcotest.float 1e-6

(* latency checks add 10s-of-ms onto epoch-scale floats: one ulp of
   Unix.gettimeofday () is ~0.25 µs, so compare at 1 µs-in-ms grain *)
let leq = Alcotest.float 1e-3

(* ------------------------------------------------------------------ *)
(* Svcstats: session-latency percentiles                               *)
(* ------------------------------------------------------------------ *)

(* A finished connection with an exact, synthetic duration: [finished] is
   mutable precisely so tests can pin latencies deterministically. *)
let finished_conn ~ms =
  let c = Znet.Svcstats.begin_conn ~peer:"t" in
  Znet.Svcstats.end_conn c `Ok;
  c.Znet.Svcstats.finished <- Some (c.Znet.Svcstats.started +. (ms /. 1000.0));
  c

let test_latency_percentiles () =
  Znet.Svcstats.reset ();
  (* empty ring: all percentiles are 0, not an exception *)
  let p50, p95, p99 = Znet.Svcstats.latency_ms () in
  Alcotest.(check leq) "empty p50" 0.0 p50;
  Alcotest.(check leq) "empty p95" 0.0 p95;
  Alcotest.(check leq) "empty p99" 0.0 p99;
  (* one sample: every percentile is that sample *)
  ignore (finished_conn ~ms:42.0);
  let p50, p95, p99 = Znet.Svcstats.latency_ms () in
  Alcotest.(check leq) "single p50" 42.0 p50;
  Alcotest.(check leq) "single p95" 42.0 p95;
  Alcotest.(check leq) "single p99" 42.0 p99;
  (* active (unfinished) connections contribute nothing *)
  let _active = Znet.Svcstats.begin_conn ~peer:"t" in
  let p50', _, _ = Znet.Svcstats.latency_ms () in
  Alcotest.(check leq) "active conn excluded" 42.0 p50';
  (* ring wraparound: cap 4, six completions — only the newest four
     (30..60 ms) survive, and nearest-rank picks p50=40, p95=p99=60 *)
  Znet.Svcstats.reset ();
  Znet.Svcstats.set_recent_cap 4;
  List.iter (fun ms -> ignore (finished_conn ~ms)) [ 10.0; 20.0; 30.0; 40.0; 50.0; 60.0 ];
  let p50, p95, p99 = Znet.Svcstats.latency_ms () in
  Alcotest.(check leq) "wraparound p50 over newest four" 40.0 p50;
  Alcotest.(check leq) "wraparound p95" 60.0 p95;
  Alcotest.(check leq) "wraparound p99" 60.0 p99;
  (* shed connections never enter the ring: the percentiles are unmoved
     and the shed counter accounts them separately *)
  Znet.Svcstats.record_shed ();
  Znet.Svcstats.record_shed ();
  let p50', p95', _ = Znet.Svcstats.latency_ms () in
  Alcotest.(check leq) "shed excluded from p50" p50 p50';
  Alcotest.(check leq) "shed excluded from p95" p95 p95';
  let shed, _, _, _ = Znet.Svcstats.farm_totals () in
  Alcotest.(check int) "shed accounted" 2 shed;
  Znet.Svcstats.reset ()

(* ------------------------------------------------------------------ *)
(* Svcstats: event-loop health                                         *)
(* ------------------------------------------------------------------ *)

let jnum j k =
  match Option.bind (Zobs.Json.member k j) Zobs.Json.to_num with
  | Some v -> v
  | None -> Alcotest.failf "missing numeric field %s" k

let test_loop_health () =
  Znet.Svcstats.reset ();
  Znet.Svcstats.set_queue_depth 3;
  Znet.Svcstats.record_loop_iter ~busy_s:0.002 ~wait_s:0.008 ~ready:3;
  Znet.Svcstats.record_loop_iter ~busy_s:0.001 ~wait_s:0.004 ~ready:1;
  let iters, busy, wait, ready = Znet.Svcstats.loop_totals () in
  Alcotest.(check int) "iterations" 2 iters;
  Alcotest.(check int) "ready fds total" 4 ready;
  Alcotest.(check feq) "busy seconds" 0.003 busy;
  Alcotest.(check feq) "wait seconds" 0.012 wait;
  let j = Znet.Svcstats.json () in
  let loop =
    match Zobs.Json.member "loop" j with
    | Some l -> l
    | None -> Alcotest.fail "/json has no loop object"
  in
  Alcotest.(check feq) "utilization = busy/(busy+wait)" 0.2 (jnum loop "utilization");
  Alcotest.(check feq) "ready_avg" 2.0 (jnum loop "ready_avg");
  Alcotest.(check feq) "iterations in json" 2.0 (jnum loop "iterations");
  let trend =
    match Option.bind (Zobs.Json.member "queue_depth_trend" loop) Zobs.Json.to_arr with
    | Some l -> l
    | None -> Alcotest.fail "no queue_depth_trend"
  in
  Alcotest.(check int) "trend holds one sample per iteration" 2 (List.length trend);
  List.iter
    (fun d -> Alcotest.(check (option feq)) "trend sampled the gauge" (Some 3.0) (Zobs.Json.to_num d))
    trend;
  let prom = Znet.Svcstats.prometheus () in
  List.iter
    (fun series -> Alcotest.(check bool) (series ^ " exposed") true (contains prom series))
    [
      "zaatar_loop_iterations_total 2";
      "zaatar_loop_busy_seconds_total";
      "zaatar_loop_utilization 0.2";
      "zaatar_loop_ready_fds_total 4";
      "zaatar_loop_iter_us_bucket";
      "zaatar_loop_iter_us_count 2";
      "zaatar_loop_ready_fds_p99";
    ];
  Znet.Svcstats.reset ();
  let iters, _, _, _ = Znet.Svcstats.loop_totals () in
  Alcotest.(check int) "reset clears loop state" 0 iters

(* ------------------------------------------------------------------ *)
(* Flight recorder ring                                                *)
(* ------------------------------------------------------------------ *)

let test_flight_ring () =
  let fl = Zobs.Flight.create ~cap:4 () in
  Alcotest.(check int) "fresh ring is empty" 0 (Zobs.Flight.count fl);
  Alcotest.(check int) "no entries yet" 0 (List.length (Zobs.Flight.entries fl));
  Zobs.Flight.record fl ~detail:"127.0.0.1:9" (Zobs.Flight.Mark "accepted");
  Zobs.Flight.record fl ~n:100 Zobs.Flight.Read;
  Zobs.Flight.record fl ~dur:0.005 ~detail:"commit" (Zobs.Flight.Phase "commit");
  Zobs.Flight.record fl ~n:50 Zobs.Flight.Write;
  Zobs.Flight.record fl ~detail:"abc" Zobs.Flight.Cache_hit;
  Zobs.Flight.record fl Zobs.Flight.Timeout;
  Alcotest.(check int) "count is total ever recorded" 6 (Zobs.Flight.count fl);
  Alcotest.(check int) "two fell off the ring" 2 (Zobs.Flight.dropped fl);
  let es = Zobs.Flight.entries fl in
  Alcotest.(check int) "cap entries survive" 4 (List.length es);
  Alcotest.(check (list string)) "oldest-first, oldest two gone"
    [ "phase.commit"; "frame.write"; "cache.hit"; "timeout" ]
    (List.map Zobs.Flight.event_name es)

let test_flight_dumps () =
  let fl = Zobs.Flight.create ~cap:8 () in
  Zobs.Flight.record fl ~detail:"peer" (Zobs.Flight.Mark "accepted");
  Zobs.Flight.record fl ~dur:0.002 (Zobs.Flight.Phase "hello");
  Zobs.Flight.record fl (Zobs.Flight.Ledger_delta [ ("e", 12); ("f", 3) ]);
  Zobs.Flight.record fl ~detail:"ok" (Zobs.Flight.Mark "finished");
  (* JSONL: header line + one line per entry, each standalone JSON *)
  let body = Zobs.Flight.jsonl ~header:[ ("sid", Zobs.Json.Num 7.0) ] fl in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' body) in
  Alcotest.(check int) "header + 4 events" 5 (List.length lines);
  let parsed = List.map Zobs.Json.parse lines in
  let header = List.hd parsed in
  let jstr j k = Option.bind (Zobs.Json.member k j) Zobs.Json.to_str in
  Alcotest.(check (option string)) "header kind" (Some "session") (jstr header "kind");
  Alcotest.(check feq) "header sid" 7.0 (jnum header "sid");
  Alcotest.(check feq) "header events" 4.0 (jnum header "events");
  Alcotest.(check feq) "header dropped" 0.0 (jnum header "dropped");
  List.iter
    (fun l -> Alcotest.(check (option string)) "event kind" (Some "event") (jstr l "kind"))
    (List.tl parsed);
  let ledger_line = List.nth parsed 3 in
  (match Option.bind (Zobs.Json.member "ops" ledger_line) (Zobs.Json.member "e") with
  | Some v -> Alcotest.(check (option feq)) "ledger delta op" (Some 12.0) (Zobs.Json.to_num v)
  | None -> Alcotest.fail "ledger event lost its ops object");
  (* Chrome-trace sidecar: parses, keeps the caller's trace id, renders
     the session envelope plus one slice per entry *)
  let dir = Test_serve.temp_dir () in
  let path = Filename.concat dir "sidecar.json" in
  Zobs.Flight.write_sidecar ~trace_id:"zscope-test-id" fl path;
  let j = Zobs.Json.parse (Test_serve.read_file path) in
  (match Option.bind (Zobs.Json.member "otherData" j) (Zobs.Json.member "trace_id") with
  | Some id ->
    Alcotest.(check (option string)) "sidecar trace id" (Some "zscope-test-id")
      (Zobs.Json.to_str id)
  | None -> Alcotest.fail "sidecar has no trace id");
  match Option.bind (Zobs.Json.member "traceEvents" j) Zobs.Json.to_arr with
  | Some evs ->
    (* process_name metadata + session envelope + one slice per entry *)
    Alcotest.(check int) "metadata + envelope + 4 slices" 6 (List.length evs)
  | None -> Alcotest.fail "sidecar has no traceEvents"

(* ------------------------------------------------------------------ *)
(* Sampling profiler                                                   *)
(* ------------------------------------------------------------------ *)

let test_profiler_samples_live_stacks () =
  (* Full tracing stays OFF: the profiler's own enable_stacks must be
     enough for Span.with_ to maintain the live stacks it samples. *)
  Alcotest.(check bool) "tracing off" false (Zobs.enabled ());
  let p = Zobs.Profiler.make ~hz:250 () in
  Alcotest.(check bool) "not running before start" false (Zobs.Profiler.running p);
  Zobs.Profiler.start p;
  Fun.protect
    ~finally:(fun () ->
      Zobs.Profiler.stop p;
      Zobs.Registry.disable_stacks ())
  @@ fun () ->
  Alcotest.(check bool) "running after start" true (Zobs.Profiler.running p);
  Zobs.Span.with_ ~name:"zscope.outer" (fun () ->
      Zobs.Span.with_ ~name:"zscope.probe" (fun () ->
          let deadline = Unix.gettimeofday () +. 10.0 in
          while
            (Zobs.Profiler.stats p).Zobs.Profiler.s_busy = 0
            && Unix.gettimeofday () < deadline
          do
            Unix.sleepf 0.002
          done));
  let st = Zobs.Profiler.stats p in
  Alcotest.(check bool) "ticker ticked" true (st.Zobs.Profiler.s_ticks > 0);
  Alcotest.(check bool) "open span seen" true (st.Zobs.Profiler.s_busy > 0);
  let f = Zobs.Profiler.folded p in
  Alcotest.(check bool) "folded holds the nested path" true
    (contains f "zscope.outer;zscope.probe ");
  Zobs.Profiler.stop p;
  Alcotest.(check bool) "stopped" false (Zobs.Profiler.running p);
  let ticks_at_stop = (Zobs.Profiler.stats p).Zobs.Profiler.s_ticks in
  Unix.sleepf 0.02;
  Alcotest.(check int) "no ticks after stop" ticks_at_stop
    (Zobs.Profiler.stats p).Zobs.Profiler.s_ticks;
  Zobs.Profiler.reset p;
  Alcotest.(check int) "reset clears samples" 0 (Zobs.Profiler.stats p).Zobs.Profiler.s_distinct

(* ------------------------------------------------------------------ *)
(* /healthz + /profile                                                 *)
(* ------------------------------------------------------------------ *)

let test_healthz_and_profile_routes () =
  let ready = ref false in
  let m =
    Argsys.Remote.start_metrics ~ready:(fun () -> !ready)
      ~profile:(fun () -> "probe;leaf 3\n")
      "127.0.0.1:0"
  in
  Fun.protect ~finally:(fun () -> Znet.Metrics_http.stop m) @@ fun () ->
  let addr = Znet.Metrics_http.bound_addr m in
  let code, body = Znet.Metrics_http.get addr "/healthz" in
  Alcotest.(check int) "not ready: 503" 503 code;
  Alcotest.(check string) "starting body" "starting\n" body;
  ready := true;
  let code, body = Znet.Metrics_http.get addr "/healthz" in
  Alcotest.(check int) "ready: 200" 200 code;
  Alcotest.(check string) "ok body" "ok\n" body;
  let code, body = Znet.Metrics_http.get addr "/profile" in
  Alcotest.(check int) "/profile serves" 200 code;
  Alcotest.(check string) "live profiler folded stacks" "probe;leaf 3\n" body;
  let code, _ = Znet.Metrics_http.get addr "/nope" in
  Alcotest.(check int) "unknown route 404" 404 code

let suite =
  [
    Alcotest.test_case "svcstats: latency percentile edge cases" `Quick test_latency_percentiles;
    Alcotest.test_case "svcstats: event-loop health accounting" `Quick test_loop_health;
    Alcotest.test_case "flight: bounded ring keeps the newest entries" `Quick test_flight_ring;
    Alcotest.test_case "flight: JSONL bundle and Chrome-trace sidecar" `Quick test_flight_dumps;
    Alcotest.test_case "profiler: samples live span stacks, tracing off" `Slow
      test_profiler_samples_live_stacks;
    Alcotest.test_case "metrics http: /healthz readiness and /profile" `Quick
      test_healthz_and_profile_routes;
  ]
