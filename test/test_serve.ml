(* End-to-end observability for the serve path: the live HTTP metrics
   endpoint scraped mid-session on an ephemeral port, Svcstats counters
   against a full TCP session, per-connection byte balance against the
   global wire counters, and verifier/prover Chrome-trace merging into one
   two-pid view under a single trace id. *)

open Argsys

let fi = Test_wire.fi
let square_plus_3 = Test_wire.square_plus_3

let with_tracing f =
  Zobs.reset ();
  Zobs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Zobs.disable ();
      Zobs.reset ())
    f

let contains s affix =
  let n = String.length s and k = String.length affix in
  let rec go i = i + k <= n && (String.sub s i k = affix || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Collect serve's log lines and wait for the "<prefix>ADDR" ones that
   announce the ephemeral ports. *)
type log_capture = { mu : Mutex.t; mutable lines : string list }

let capture () = { mu = Mutex.create (); lines = [] }

let log_to c s =
  Mutex.lock c.mu;
  c.lines <- s :: c.lines;
  Mutex.unlock c.mu

let wait_for c prefix =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let hit =
      Mutex.lock c.mu;
      let r =
        List.find_map
          (fun l ->
            if
              String.length l > String.length prefix
              && String.sub l 0 (String.length prefix) = prefix
            then Some (String.sub l (String.length prefix) (String.length l - String.length prefix))
            else None)
          c.lines
      in
      Mutex.unlock c.mu;
      r
    in
    match hit with
    | Some addr -> addr
    | None ->
      if Unix.gettimeofday () > deadline then Alcotest.failf "serve never logged %S" prefix;
      Unix.sleepf 0.01;
      go ()
  in
  go ()

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "zserve_test_%d_%d" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1e3)))
  in
  (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let lookup_sq3 =
  let d = Argument.digest square_plus_3 in
  fun d' -> if String.equal d' d then Some square_plus_3 else None

(* Run [body] against a one-shot serve loop in its own domain. Teardown
   cannot hang: any connection the body registered in [conn_ref] is
   closed, the accept loop is kicked with a throwaway connect if the body
   never reached it, and the domain is joined exactly once — the body
   calls [join] itself when it wants the loop's final state. *)
let with_serve_domain serve body =
  let cap = capture () in
  let server = Domain.spawn (fun () -> serve (log_to cap)) in
  let addr = wait_for cap "listening on " in
  let conn_ref : Znet.conn option ref = ref None in
  let joined = ref false in
  let join () =
    if not !joined then begin
      joined := true;
      ignore (Domain.join server)
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (match !conn_ref with
      | Some c ->
        (try Znet.close c with _ -> ());
        conn_ref := None
      | None -> ());
      if not !joined then begin
        (try Znet.close (Znet.connect ~retries:0 addr) with _ -> ());
        join ()
      end)
    (fun () -> body ~cap ~addr ~conn_ref ~join)

(* Prometheus text parses: every non-comment line ends in a number. *)
let check_prometheus_shape text =
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "unparsable metrics line %S" line
           | Some i ->
             let v = String.sub line (i + 1) (String.length line - i - 1) in
             if float_of_string_opt v = None then Alcotest.failf "non-numeric value in %S" line)

let http_tests =
  [
    Alcotest.test_case "metrics HTTP server: routes, 404, stop" `Quick (fun () ->
        let m =
          Znet.Metrics_http.start "127.0.0.1:0" ~render:(fun path ->
              match path with
              | "/metrics" -> Some ("text/plain; version=0.0.4", "fixed_metric 1\n")
              | "/json" -> Some ("application/json", "{\"ok\":true}")
              | _ -> None)
        in
        Fun.protect
          ~finally:(fun () -> Znet.Metrics_http.stop m)
          (fun () ->
            let addr = Znet.Metrics_http.bound_addr m in
            let code, body = Znet.Metrics_http.get addr "/metrics" in
            Alcotest.(check int) "200" 200 code;
            Alcotest.(check string) "body" "fixed_metric 1\n" body;
            let code, body = Znet.Metrics_http.get addr "/json" in
            Alcotest.(check int) "json 200" 200 code;
            Alcotest.(check bool) "json body parses" true
              (Zobs.Json.parse body = Zobs.Json.Obj [ ("ok", Zobs.Json.Bool true) ]);
            let code, _ = Znet.Metrics_http.get addr "/nope" in
            Alcotest.(check int) "404" 404 code));
  ]

let scrape_tests =
  [
    Alcotest.test_case "live scrape of an ephemeral-port serve mid-session" `Quick (fun () ->
        Znet.Svcstats.reset ();
        with_serve_domain
          (fun log ->
            Remote.serve ~config:Argument.test_config ~lookup:lookup_sq3 ~once:true
              ~metrics_listen:"127.0.0.1:0" ~log "127.0.0.1:0")
          (fun ~cap ~addr ~conn_ref ~join ->
            let maddr = wait_for cap "metrics on " in
            (* Open a session and park it after the Hello exchange so the
               connection is live while we scrape. *)
            let conn = Znet.connect addr in
            conn_ref := Some conn;
            let cfg = Argument.test_config in
            let hello =
              Zwire.Hello
                {
                  Zwire.digest = Argument.digest square_plus_3;
                  modulus = Fieldlib.Primes.p61;
                  rho = cfg.Argument.params.Pcp.Pcp_zaatar.rho;
                  rho_lin = cfg.Argument.params.Pcp.Pcp_zaatar.rho_lin;
                  p_bits = cfg.Argument.p_bits;
                  inputs = [| [| fi 2 |] |];
                  trace_id = "";
                }
            in
            Znet.send conn (Zwire.encode hello);
            (match Zwire.decode (Znet.recv conn) with
            | Zwire.Hello_ok _ -> ()
            | m -> Alcotest.failf "expected Hello_ok, got tag %d" (Zwire.tag_of_msg m));
            let code, text = Znet.Metrics_http.get maddr "/metrics" in
            Alcotest.(check int) "scrape 200" 200 code;
            Alcotest.(check bool) "accepted counter" true
              (contains text "zaatar_server_connections_accepted_total 1");
            Alcotest.(check bool) "connection live" true
              (contains text "zaatar_server_connections_active 1");
            Alcotest.(check bool) "per-conn bytes series" true
              (contains text "zaatar_conn_bytes_sent_total");
            check_prometheus_shape text;
            let code, body = Znet.Metrics_http.get maddr "/json" in
            Alcotest.(check int) "json 200" 200 code;
            let j = Zobs.Json.parse body in
            let server_j = Option.get (Zobs.Json.member "server" j) in
            let jint k =
              Option.map int_of_float (Option.bind (Zobs.Json.member k server_j) Zobs.Json.to_num)
            in
            Alcotest.(check (option int)) "json accepted" (Some 1) (jint "accepted");
            Alcotest.(check (option int)) "json active" (Some 1) (jint "active");
            let conns =
              Option.get (Option.bind (Zobs.Json.member "connections" j) Zobs.Json.to_arr)
            in
            Alcotest.(check int) "one connection listed" 1 (List.length conns);
            (* Hang up mid-protocol: the prover records a connection error
               and the once-loop winds down. *)
            Znet.close conn;
            conn_ref := None;
            join ();
            let accepted, active, completed, failed, _, _ = Znet.Svcstats.totals () in
            Alcotest.(check int) "accepted" 1 accepted;
            Alcotest.(check int) "none active" 0 active;
            Alcotest.(check int) "none completed" 0 completed;
            Alcotest.(check int) "one failed" 1 failed));
  ]

let session_tests =
  [
    Alcotest.test_case "traced TCP session: counters, byte balance, merged trace" `Quick
      (fun () ->
        with_tracing (fun () ->
            Znet.Svcstats.reset ();
            let dir = temp_dir () in
            let trace_id = Zobs.mint_trace_id () in
            with_serve_domain
              (fun log ->
                Remote.serve ~config:Argument.test_config ~lookup:lookup_sq3 ~once:true
                  ~trace_dir:dir ~log "127.0.0.1:0")
              (fun ~cap:_ ~addr ~conn_ref:_ ~join ->
                let inputs = Array.map (fun x -> [| fi x |]) [| 2; 5 |] in
                let r =
                  Remote.run_connect ~config:Argument.test_config ~trace_id ~addr square_plus_3
                    ~prg:(Chacha.Prg.create ~seed:"serve e2e verifier" ())
                    ~inputs
                in
                join ();
                Alcotest.(check bool) "batch accepted" true (Argument.all_accepted r);
                let accepted, active, completed, failed, decode_errors, _ =
                  Znet.Svcstats.totals ()
                in
                Alcotest.(check int) "accepted" 1 accepted;
                Alcotest.(check int) "active drained" 0 active;
                Alcotest.(check int) "completed" 1 completed;
                Alcotest.(check int) "no failures" 0 failed;
                Alcotest.(check int) "no decode errors" 0 decode_errors;
                (* Both endpoints live in this process, so the global wire
                   counters see every byte twice — once encoded, once
                   decoded — and the prover connection's sent+recv must
                   equal either side of that ledger exactly. *)
                let counter name = List.assoc name (Zobs.Registry.counter_values ()) in
                let wire_sent = counter "wire.bytes.sent"
                and wire_recv = counter "wire.bytes.recv" in
                Alcotest.(check int) "encode/decode ledger balances" wire_sent wire_recv;
                let j = Zobs.Json.parse (Remote.metrics_json ()) in
                let conns =
                  Option.get (Option.bind (Zobs.Json.member "connections" j) Zobs.Json.to_arr)
                in
                let conn_j = List.hd conns in
                let jint k =
                  int_of_float
                    (Option.get (Option.bind (Zobs.Json.member k conn_j) Zobs.Json.to_num))
                in
                Alcotest.(check int) "conn bytes account for the whole session" wire_sent
                  (jint "bytes_sent" + jint "bytes_recv");
                Alcotest.(check bool) "prover sent bytes" true (jint "bytes_sent" > 0);
                Alcotest.(check bool) "prover received bytes" true (jint "bytes_recv" > 0);
                Alcotest.(check (option string)) "digest recorded"
                  (Some (Argument.digest square_plus_3))
                  (Option.bind (Zobs.Json.member "digest" conn_j) Zobs.Json.to_str);
                (* Merge the prover sidecar with a verifier-side export:
                   one file per role, two pids, one trace id. *)
                let prover_trace = Filename.concat dir "prover_conn0.json" in
                Alcotest.(check bool) "sidecar written" true (Sys.file_exists prover_trace);
                let verifier_trace = Filename.concat dir "verifier.json" in
                let merged = Filename.concat dir "merged.json" in
                Zobs.Sink.write_chrome_trace ~pid:0 ~process_name:"verifier" verifier_trace;
                Zobs.Sink.merge_chrome_trace_files ~out:merged [ verifier_trace; prover_trace ];
                let mj = Zobs.Json.parse (read_file merged) in
                Alcotest.(check (option string)) "merged trace id" (Some trace_id)
                  (Option.bind
                     (Option.bind (Zobs.Json.member "otherData" mj) (Zobs.Json.member "trace_id"))
                     Zobs.Json.to_str);
                let events =
                  Option.get (Option.bind (Zobs.Json.member "traceEvents" mj) Zobs.Json.to_arr)
                in
                let pids =
                  List.sort_uniq compare
                    (List.filter_map
                       (fun e ->
                         Option.map int_of_float
                           (Option.bind (Zobs.Json.member "pid" e) Zobs.Json.to_num))
                       events)
                in
                Alcotest.(check (list int)) "verifier and prover pids" [ 0; 1 ] pids;
                let names =
                  List.filter_map
                    (fun e ->
                      match Zobs.Json.member "ph" e with
                      | Some (Zobs.Json.Str "M") ->
                        Option.bind (Zobs.Json.member "args" e) (fun a ->
                            Option.bind (Zobs.Json.member "name" a) Zobs.Json.to_str)
                      | _ -> None)
                    events
                in
                Alcotest.(check bool) "both process names" true
                  (List.mem "verifier" names && List.mem "prover" names))))
  ]

let suite = http_tests @ scrape_tests @ session_tests
