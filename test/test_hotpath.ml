open Fieldlib
open Argsys

(* The zero-allocation hot path: aliasing laws of every destructive
   [*_into] kernel, NTT-vs-reference and NTT-vs-Lagrange differentials,
   domain-count independence of the arena-backed parallel paths, and
   bit-for-bit transcript stability of the Lagrange pipeline. *)

let ctx = Fp.create Primes.p127_ntt

let qtest name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let prg_of seed tag = Chacha.Prg.create ~seed:(Printf.sprintf "hotpath %s %d" tag seed) ()

(* ------------------------------------------------------------------ *)
(* Nat scalar kernels                                                  *)
(* ------------------------------------------------------------------ *)

let width = 5 (* limbs of a 127-bit element *)

let random_limbs prg w = Array.init w (fun _ -> Chacha.Prg.int_below prg (1 lsl 31))

(* Run [op dst a b] under every aliasing pattern and demand the same
   limbs and the same returned carry/borrow as the fresh-destination
   call. *)
let aliasing_law op seed tag =
  let prg = prg_of seed tag in
  let a = random_limbs prg width and b = random_limbs prg width in
  let fresh = Array.make width 0 in
  let flag = op fresh a b in
  let check dst a' b' =
    let f = op dst a' b' in
    f = flag && Array.sub dst 0 width = fresh
  in
  (let a' = Array.copy a in check a' a' b)
  && (let b' = Array.copy b in check b' a b')
  && (* dst == a == b: op must behave as x op x *)
  let twice = Array.make width 0 in
  let tf = op twice a a in
  let s = Array.copy a in
  let sf = op s s s in
  sf = tf && Array.sub s 0 width = twice

let nat_tests =
  [
    qtest "Nat.add_into: aliasing dst==a, dst==b, dst==a==b" 200 QCheck.small_int (fun seed ->
        aliasing_law (Nat.add_into ~width) seed "add");
    qtest "Nat.sub_into: aliasing dst==a, dst==b, dst==a==b" 200 QCheck.small_int (fun seed ->
        aliasing_law (Nat.sub_into ~width) seed "sub");
    qtest "Nat.add_into/sub_into agree with Nat.add/Nat.sub" 200 QCheck.small_int (fun seed ->
        let prg = prg_of seed "addsub-ref" in
        let a = random_limbs prg width and b = random_limbs prg width in
        let dst = Array.make width 0 in
        let c = Nat.add_into ~width dst a b in
        let sum = Nat.add (Nat.of_limbs a) (Nat.of_limbs b) in
        let expect = Nat.to_limbs ~width:(width + 1) sum in
        Array.sub expect 0 width = dst && expect.(width) = c);
    qtest "Nat.mul_into matches Nat.mul, even with dst==scratch and dirty scratch" 200
      QCheck.small_int (fun seed ->
        let prg = prg_of seed "mul" in
        let a = random_limbs prg width and b = random_limbs prg width in
        let expect = Nat.to_limbs ~width:(2 * width) (Nat.mul (Nat.of_limbs a) (Nat.of_limbs b)) in
        (* garbage-filled scratch must not leak into the product *)
        let scratch = Array.init (2 * width) (fun _ -> Chacha.Prg.int_below prg (1 lsl 31)) in
        let dst = Array.init (2 * width) (fun _ -> Chacha.Prg.int_below prg (1 lsl 31)) in
        Nat.mul_into ~width ~scratch dst a b;
        let separate_ok = dst = expect in
        (* dst aliasing the scratch buffer itself is documented as legal *)
        let scratch2 = Array.init (2 * width) (fun _ -> Chacha.Prg.int_below prg (1 lsl 31)) in
        Nat.mul_into ~width ~scratch:scratch2 scratch2 a b;
        separate_ok && scratch2 = expect);
  ]

(* ------------------------------------------------------------------ *)
(* Fp.Vec packed kernels                                               *)
(* ------------------------------------------------------------------ *)

let random_el prg = Chacha.Prg.field ctx prg

let vec_tests =
  [
    qtest "Fp.Vec.mul/add/sub: every slot-aliasing pattern matches boxed Fp" 150 QCheck.small_int
      (fun seed ->
        let prg = prg_of seed "vec" in
        let sc = Fp.scratch_for ctx in
        let xs = Array.init 3 (fun _ -> random_el prg) in
        let boxed = [| Fp.mul ctx; Fp.add ctx; Fp.sub ctx |] in
        let packed = [| Fp.Vec.mul ctx sc; Fp.Vec.add ctx sc; Fp.Vec.sub ctx sc |] in
        let ok = ref true in
        Array.iteri
          (fun opi op ->
            let reference = boxed.(opi) in
            (* (dst, src1, src2) slot triples covering disjoint, dst==src1,
               dst==src2, src1==src2 and all-equal *)
            List.iter
              (fun (d, i, j) ->
                let v = Fp.Vec.of_array ctx xs in
                op v d v i v j;
                if not (Fp.equal (Fp.Vec.get v d) (reference xs.(i) xs.(j))) then ok := false)
              [ (0, 1, 2); (0, 0, 1); (0, 1, 0); (0, 1, 1); (0, 0, 0) ])
          packed;
        !ok);
    qtest "Fp.Vec.butterfly matches boxed butterfly, twiddle aliasing included" 150
      QCheck.small_int (fun seed ->
        let prg = prg_of seed "bfly" in
        let sc = Fp.scratch_for ctx in
        let xs = Array.init 3 (fun _ -> random_el prg) in
        let expect_hi w x y = Fp.add ctx x (Fp.mul ctx w y) in
        let expect_lo w x y = Fp.sub ctx x (Fp.mul ctx w y) in
        (* twiddle in a separate vector *)
        let v = Fp.Vec.of_array ctx [| xs.(0); xs.(1) |] in
        let tw = Fp.Vec.of_array ctx [| xs.(2) |] in
        Fp.Vec.butterfly ctx sc v 0 1 tw 0;
        let sep_ok =
          Fp.equal (Fp.Vec.get v 0) (expect_hi xs.(2) xs.(0) xs.(1))
          && Fp.equal (Fp.Vec.get v 1) (expect_lo xs.(2) xs.(0) xs.(1))
        in
        (* twiddle slot living inside the data vector itself *)
        let v2 = Fp.Vec.of_array ctx xs in
        Fp.Vec.butterfly ctx sc v2 0 1 v2 2;
        sep_ok
        && Fp.equal (Fp.Vec.get v2 0) (expect_hi xs.(2) xs.(0) xs.(1))
        && Fp.equal (Fp.Vec.get v2 1) (expect_lo xs.(2) xs.(0) xs.(1))
        && Fp.equal (Fp.Vec.get v2 2) xs.(2));
  ]

(* ------------------------------------------------------------------ *)
(* Montgomery packed REDC                                              *)
(* ------------------------------------------------------------------ *)

let mont_tests =
  [
    qtest "Montgomery.mul_into = x*y*R^-1, dst aliasing either input" 150 QCheck.small_int
      (fun seed ->
        let prg = prg_of seed "mont" in
        let p = Fp.modulus ctx in
        let m = Montgomery.create p in
        let k = Nat.num_limbs p in
        (* REDC(x*y) = x*y*R^-1 mod p for any reduced x, y — no need to
           enter Montgomery form to state the law. *)
        let r_mod_p = Fp.of_nat ctx (Nat.shift_left Nat.one (31 * k)) in
        let x = random_el prg and y = random_el prg in
        let expect =
          Fp.to_nat (Fp.mul ctx (Fp.mul ctx x y) (Fp.inv ctx r_mod_p))
        in
        let sc = Montgomery.scratch_for m in
        let buf = Limb.create (3 * k) in
        let load off e = Limb.of_nat (Fp.to_nat e) buf off k in
        let slice off = Limb.to_nat buf off k in
        load 0 x;
        load k y;
        Montgomery.mul_into m sc buf (2 * k) buf 0 buf k;
        let disjoint_ok = Nat.compare (slice (2 * k)) expect = 0 in
        load 0 x;
        Montgomery.mul_into m sc buf 0 buf 0 buf k;
        let alias_a_ok = Nat.compare (slice 0) expect = 0 in
        load 0 x;
        load k y;
        Montgomery.mul_into m sc buf k buf 0 buf k;
        disjoint_ok && alias_a_ok && Nat.compare (slice k) expect = 0);
  ]

(* ------------------------------------------------------------------ *)
(* NTT differentials and parallel-path independence                    *)
(* ------------------------------------------------------------------ *)

let random_satisfiable seed =
  let open Constr in
  let prg = prg_of seed "r1cs" in
  let n = 4 + Chacha.Prg.int_below prg 12 in
  let num_z = 1 + Chacha.Prg.int_below prg (n - 1) in
  let nc = 2 + Chacha.Prg.int_below prg 20 in
  let w = Array.init (n + 1) (fun i -> if i = 0 then Fp.one else Chacha.Prg.field ctx prg) in
  let random_row () =
    let t = ref Lincomb.zero in
    for _ = 0 to Chacha.Prg.int_below prg 4 do
      t := Lincomb.add_term ctx !t (Chacha.Prg.int_below prg (n + 1)) (Chacha.Prg.field ctx prg)
    done;
    !t
  in
  let constraints =
    Array.init nc (fun _ ->
        let a = random_row () and b = random_row () and c0 = random_row () in
        let target = Fp.mul ctx (Lincomb.eval ctx a w) (Lincomb.eval ctx b w) in
        let fix = Fp.sub ctx target (Lincomb.eval ctx c0 w) in
        { R1cs.a; b; c = Lincomb.add_term ctx c0 0 fix })
  in
  ({ R1cs.field = ctx; num_vars = n; num_z; constraints }, w)

let h_equal h h' = Array.length h = Array.length h' && Array.for_all2 Fp.equal h h'

let ntt_tests =
  [
    qtest "packed NTT prover_h = boxed subproduct-tree reference" 60 QCheck.small_int
      (fun seed ->
        let sys, w = random_satisfiable seed in
        let q = Qap_ntt.of_r1cs sys in
        h_equal (Qap_ntt.prover_h q w) (Qap_ntt.prover_h_reference q w));
    qtest "prover_h is domain-count independent (DLS scratch isolation)" 20 QCheck.small_int
      (fun seed ->
        let sys, w = random_satisfiable seed in
        let q = Qap_ntt.of_r1cs sys in
        let witnesses = Array.make 4 w in
        let serial = Array.map (Qap_ntt.prover_h q) witnesses in
        List.for_all
          (fun domains ->
            let par = Dompool.Pool.map ~domains (Qap_ntt.prover_h q) witnesses in
            Array.for_all2 h_equal serial par)
          [ 1; 2; 4 ]);
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end: backend agreement on the benchmark suite                *)
(* ------------------------------------------------------------------ *)

let config backend =
  {
    Argument.params = { Pcp.Pcp_zaatar.rho = 1; rho_lin = 2 };
    p_bits = 192;
    strategy = Argument.Honest;
    domains = 1;
    qap_backend = backend;
  }

let e2e_tests =
  [
    Alcotest.test_case "all five benchmark apps accept under both backends" `Slow (fun () ->
        List.iter
          (fun (app : Apps.App_def.t) ->
            let compiled = Apps.Glue.compile ctx app in
            let comp = Apps.Glue.computation_of compiled in
            let iprg = prg_of 0 ("inputs " ^ app.Apps.App_def.name) in
            let inputs = [| Apps.Glue.field_inputs ctx (app.Apps.App_def.gen_inputs iprg) |] in
            let verdicts backend =
              let prg = prg_of 1 ("run " ^ app.Apps.App_def.name) in
              let r = Argument.run_batch ~config:(config backend) comp ~prg ~inputs in
              Array.map (fun (i : Argument.instance_result) -> i.Argument.accepted) r.Argument.instances
            in
            let vn = verdicts Qapb.Ntt and vl = verdicts Qapb.Lagrange in
            Alcotest.(check (array bool))
              (app.Apps.App_def.name ^ " verdicts agree") vl vn;
            Alcotest.(check bool) (app.Apps.App_def.name ^ " accepts") true (Array.for_all Fun.id vn))
          (Apps.Registry.suite ~scale:1 ()));
  ]

(* ------------------------------------------------------------------ *)
(* Transcript stability: the Lagrange pipeline is bit-for-bit the seed  *)
(* ------------------------------------------------------------------ *)

(* Wire digests captured on the pre-refactor tree (PR 6) over p127 with
   rho=1, rho_lin=2, p_bits=192, domains=1. [Auto] resolves to Lagrange on
   p127 (2-adicity 1), so both configurations below must reproduce the
   seed transcripts exactly. *)

let transcript_digest backend name src raw_inputs =
  let ctx = Fp.create Primes.p127 in
  let compiled = Zlang.Compile.compile ~ctx src in
  let comp = Apps.Glue.computation_of compiled in
  let prg = Chacha.Prg.create ~seed:("transcript " ^ name) () in
  let inputs = [| Apps.Glue.field_inputs ctx raw_inputs |] in
  let config = { (config backend) with Argument.strategy = Argument.Honest } in
  let vs = Argument.Verifier_session.create ~config comp ~prg ~inputs in
  let d = Argument.digest comp in
  let ps =
    Argument.Prover_session.create ~config
      ~lookup:(fun d' -> if d' = d then Some comp else None)
      ~prg ()
  in
  let vcodec = Argument.Verifier_session.codec vs in
  let acc = Buffer.create 4096 in
  let nmsg = ref 0 in
  let v_to_p m =
    let b = Zwire.encode ~codec:vcodec m in
    Buffer.add_string acc (Bytes.to_string b);
    incr nmsg;
    Zwire.decode ?codec:(Argument.Prover_session.codec ps) b
  in
  let p_to_v m =
    let b = Zwire.encode ?codec:(Argument.Prover_session.codec ps) m in
    Buffer.add_string acc (Bytes.to_string b);
    incr nmsg;
    Zwire.decode ~codec:vcodec b
  in
  let rec pump m =
    match Argument.Prover_session.on_msg ps (v_to_p m) with
    | `Finished None -> ()
    | `Finished (Some reply) | `Send reply -> (
      match Argument.Verifier_session.on_msg vs (p_to_v reply) with
      | `Send next -> pump next
      | `Finished (Some last) -> (
        match Argument.Prover_session.on_msg ps (v_to_p last) with
        | `Finished _ -> ()
        | `Send _ -> Alcotest.fail "protocol did not terminate")
      | `Finished None -> ())
  in
  pump (Argument.Verifier_session.initial vs);
  let r = Argument.Verifier_session.result ~prover:(Argument.Prover_session.metrics ps) vs in
  Alcotest.(check bool) (name ^ " accepts") true (Argument.all_accepted r);
  (!nmsg, Buffer.length acc, Digest.to_hex (Digest.string (Buffer.contents acc)))

let sq3_src =
  "computation sq3(input int32 x, input int32 w, output int32 y) { y = x*x + w*w + 3; }"

let horner_src =
  "computation horner(input int12 c[9], input int12 x, output int64 y) {\n\
  \  var int64 acc = 0;\n\
  \  for i in 0..9 { acc = acc * x + c[i]; }\n\
  \  y = acc;\n\
   }"

let horner_inputs = Array.append (Array.init 9 (fun i -> 1000 + (17 * i))) [| 2019 |]

let transcript_tests =
  List.map
    (fun (label, backend) ->
      Alcotest.test_case
        (Printf.sprintf "seed transcripts reproduced bit-for-bit (%s)" label)
        `Quick
        (fun () ->
          Alcotest.(check (triple int int string))
            "sq3"
            (7, 1959, "527cf31a0a56ae3ec594c45ba8aea902")
            (transcript_digest backend "sq3" sq3_src [| 123; 4567 |]);
          Alcotest.(check (triple int int string))
            "horner"
            (7, 7207, "750745d40f0aa1f602fdc0d21cb3ce6f")
            (transcript_digest backend "horner" horner_src horner_inputs)))
    [ ("auto", Qapb.Auto); ("lagrange", Qapb.Lagrange) ]

let suite = nat_tests @ vec_tests @ mont_tests @ ntt_tests @ e2e_tests @ transcript_tests
