open Fieldlib
open Zcrypto

(* Property tests for the DESIGN.md §8 exponentiation kernels: fixed-base
   window tables, Shamir simultaneous exponentiation, Pippenger bucket
   multi-exponentiation, and the parallel commitment pipeline built on
   them. Every kernel is checked against the generic ladder ({!Group.pow}),
   which in turn is pinned against the Barrett ladder elsewhere. *)

let field = Primes.p61
let ctx = Fp.create field
let grp = Group.cached ~field_order:field ~p_bits:192 ()
let prg seed = Chacha.Prg.create ~seed ()
let q1 = Nat.sub grp.Group.q Nat.one

let rand_el p = Group.fb_pow grp (Group.fb_g grp) (Fp.to_nat (Chacha.Prg.field ctx p))
let rand_exp p = Fp.to_nat (Chacha.Prg.field ctx p)

(* Exponent edge cases every kernel must handle: 0, 1, and q-1 (the widest
   exponent a Z_q table must cover). *)
let edge_exps = [ Nat.zero; Nat.one; q1 ]

let check_pow name expect got = Alcotest.(check bool) name true (Group.equal expect got)

let fixed_base_tests =
  [
    Alcotest.test_case "fb_pow = pow for windows 1-6" `Quick (fun () ->
        let p = prg "fb windows" in
        let bases = [ ("g", grp.Group.g); ("rand", rand_el p) ] in
        List.iter
          (fun (bname, base) ->
            for window = 1 to 6 do
              let tab = Group.fb_precompute ~window grp base in
              let exps = edge_exps @ List.init 8 (fun _ -> rand_exp p) in
              List.iter
                (fun e ->
                  check_pow
                    (Printf.sprintf "%s w=%d e=%s" bname window (Nat.to_hex e))
                    (Group.pow grp base e) (Group.fb_pow grp tab e))
                exps
            done)
          bases);
    Alcotest.test_case "cached g-table matches pow" `Quick (fun () ->
        let p = prg "fb g" in
        let tab = Group.fb_g grp in
        List.iter
          (fun e -> check_pow "g table" (Group.pow grp grp.Group.g e) (Group.fb_pow grp tab e))
          (edge_exps @ List.init 16 (fun _ -> rand_exp p)));
    Alcotest.test_case "fb_pow falls back beyond the table range" `Quick (fun () ->
        (* A table sized for Z_q exponents must still be correct for wider
           exponents (generic-ladder fallback). *)
        let wide = Nat.mul grp.Group.q (Nat.of_int 3) in
        check_pow "wide exponent" (Group.pow grp grp.Group.g wide)
          (Group.fb_pow grp (Group.fb_g grp) wide));
  ]

let shamir_tests =
  [
    Alcotest.test_case "pow2 = pow * pow" `Quick (fun () ->
        let p = prg "shamir" in
        let cases =
          List.concat_map (fun e1 -> List.map (fun e2 -> (e1, e2)) edge_exps) edge_exps
          @ List.init 12 (fun _ -> (rand_exp p, rand_exp p))
        in
        List.iter
          (fun (e1, e2) ->
            let b1 = rand_el p and b2 = rand_el p in
            check_pow "pow2"
              (Group.mul grp (Group.pow grp b1 e1) (Group.pow grp b2 e2))
              (Group.pow2 grp b1 e1 b2 e2))
          cases);
  ]

let multi_pow_tests =
  [
    Alcotest.test_case "multi_pow = fold of pow" `Quick (fun () ->
        let p = prg "pippenger" in
        let naive bases exps =
          let acc = ref Group.one in
          Array.iteri (fun i b -> acc := Group.mul grp !acc (Group.pow grp b exps.(i))) bases;
          !acc
        in
        List.iter
          (fun n ->
            let bases = Array.init n (fun _ -> rand_el p) in
            let exps =
              Array.init n (fun i ->
                  match i with 0 -> Nat.zero | 1 -> Nat.one | 2 -> q1 | _ -> rand_exp p)
            in
            let expect = naive bases exps in
            List.iter
              (fun window ->
                let got =
                  match window with
                  | None -> Group.multi_pow grp bases exps
                  | Some w -> Group.multi_pow ~window:w grp bases exps
                in
                check_pow (Printf.sprintf "n=%d" n) expect got)
              [ None; Some 1; Some 2; Some 3 ])
          [ 0; 1; 2; 3; 7; 20 ]);
  ]

let hom_dot_tests =
  [
    Alcotest.test_case "hom_dot = hom_dot_naive" `Quick (fun () ->
        let p = prg "hom_dot" in
        let _, pk = Elgamal.keygen grp p in
        List.iter
          (fun n ->
            let r = Array.init n (fun _ -> Chacha.Prg.field ctx p) in
            let enc_r = Array.map (Elgamal.encrypt pk p) r in
            (* Mix of zeros (skipped), ones (bare hom_add) and generic
               coefficients, the three hom_dot partitions. *)
            let u =
              Array.init n (fun i ->
                  if i mod 4 = 0 then Fp.zero
                  else if i mod 4 = 1 then Fp.one
                  else Chacha.Prg.field ctx p)
            in
            let a = Elgamal.hom_dot pk enc_r u and b = Elgamal.hom_dot_naive pk enc_r u in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d" n) true
              (Group.equal a.Elgamal.c1 b.Elgamal.c1 && Group.equal a.Elgamal.c2 b.Elgamal.c2))
          [ 0; 1; 5; 24 ]);
  ]

let parallel_tests =
  [
    Alcotest.test_case "commit_request transcript is domain-count independent" `Quick (fun () ->
        let run domains =
          Commitment.Commit.commit_request ~domains ctx grp (prg "par commit") ~len:17
        in
        let req1, vs1 = run 1 and req4, vs4 = run 4 in
        Alcotest.(check bool) "same y" true
          (Group.equal req1.Commitment.Commit.pk.Elgamal.y req4.Commitment.Commit.pk.Elgamal.y);
        Array.iteri
          (fun i (c1 : Elgamal.ciphertext) ->
            let c4 = req4.Commitment.Commit.enc_r.(i) in
            Alcotest.(check bool)
              (Printf.sprintf "enc_r.%d" i)
              true
              (Group.equal c1.Elgamal.c1 c4.Elgamal.c1 && Group.equal c1.Elgamal.c2 c4.Elgamal.c2))
          req1.Commitment.Commit.enc_r;
        Array.iteri
          (fun i r1 ->
            Alcotest.(check bool) (Printf.sprintf "r.%d" i) true
              (Fp.equal r1 vs4.Commitment.Commit.r.(i)))
          vs1.Commitment.Commit.r);
    Alcotest.test_case "commitment protocol accepts with domains > 1" `Quick (fun () ->
        let p = prg "par protocol" in
        let n = 11 in
        let u = Array.init n (fun _ -> Chacha.Prg.field ctx p) in
        let req, vs = Commitment.Commit.commit_request ~domains:3 ctx grp p ~len:n in
        let com = Commitment.Commit.prover_commit req u in
        let queries = Array.init 4 (fun _ -> Array.init n (fun _ -> Chacha.Prg.field ctx p)) in
        let ch = Commitment.Commit.decommit_challenge ctx vs p queries in
        let ans = Commitment.Commit.prover_answer ctx u queries ch.Commitment.Commit.t in
        Alcotest.(check bool) "accept" true
          (Commitment.Commit.consistency_check vs ch ~commitment:com ans));
  ]

let suite = fixed_base_tests @ shamir_tests @ multi_pow_tests @ hom_dot_tests @ parallel_tests
