(* Zfuzz, the differential fuzzing campaign: generator invariants (QCheck
   over the seed space), the printer round-trip, the seed-pinned campaign
   itself — generate, compile, solve three ways, compare — and the
   break-transform mode backing the committed
   lint_fixtures/fuzz_broken_transform.r1cs. *)

open Fieldlib

let ctx = Fp.create Primes.p127_ntt

(* ---- generator invariants ---- *)

(* Any seed yields a program that parses back from its own printout and
   stays under the width cap (so compilation cannot hit the builder's
   capacity check). *)
let test_gen_invariants () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:60 ~name:"generated programs print, reparse and stay narrow"
       QCheck.small_nat (fun n ->
         let prg = Chacha.Prg.create ~seed:(Printf.sprintf "gen-inv-%d" n) () in
         let prog = Zfuzz.Gen.program prg in
         let src = Zlang.Printer.to_source prog in
         let reparsed = Zlang.Parser.parse_program src in
         Zlang.Printer.to_source reparsed = src
         && Zfuzz.Gen.max_width prog <= Zfuzz.Gen.width_cap))

(* The printer is exact on the shipped examples too: parse -> print ->
   parse must reach a printing fixpoint. *)
let test_printer_roundtrip_examples () =
  List.iter
    (fun path ->
      let ic = open_in_bin path in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let p1 = Zlang.Parser.parse_program src in
      let printed = Zlang.Printer.to_source p1 in
      let p2 = Zlang.Parser.parse_program printed in
      Alcotest.(check string)
        (path ^ " printing fixpoint") printed (Zlang.Printer.to_source p2))
    [ "../examples/ema.zl"; "../examples/matmul.zl"; "../examples/payroll.zl" ]

(* Printed parentheses preserve evaluation: a printed-then-reparsed
   program computes the same outputs natively. *)
let test_printer_preserves_semantics () =
  for n = 0 to 19 do
    let prg = Chacha.Prg.create ~seed:(Printf.sprintf "print-sem-%d" n) () in
    let prog = Zfuzz.Gen.program prg in
    let ints = Zfuzz.Gen.inputs prg prog in
    let reparsed = Zlang.Parser.parse_program (Zlang.Printer.to_source prog) in
    Alcotest.(check (array int))
      "outputs survive the round trip" (Zfuzz.Eval.run prog ints)
      (Zfuzz.Eval.run reparsed ints)
  done

(* ---- the evaluator ---- *)

let test_eval_semantics () =
  let run src ints =
    Zfuzz.Eval.run (Zlang.Parser.parse_program src) ints
  in
  (* >> is a floor shift (matches the decomposition gadget) *)
  Alcotest.(check (array int)) "floor shift on negatives" [| -2 |]
    (run "computation t(input int8 x, output int32 y) { y = x >> 2; }" [| -7 |]);
  (* booleans are arithmetic: && = *, || = +-*, ! = 1-x *)
  Alcotest.(check (array int)) "logic encodings" [| 1; 1; 0 |]
    (run
       "computation t(input int8 x, output int32 a, output int32 b, output int32 c) { a = (x > \
        0) || (x < 0); b = !(x == 0); c = (x > 0) && (x < 0); }"
       [| 5 |]);
  (* both-branch flattening and native single-branch execution agree on
     the merged bindings *)
  Alcotest.(check (array int)) "if/else" [| 11 |]
    (run
       "computation t(input int8 x, output int32 y) { if (x > 3) { y = 11; } else { y = 22; } }"
       [| 4 |]);
  (* loops unroll lo .. hi-1; arrays are element stores *)
  Alcotest.(check (array int)) "loop accumulation" [| 6 |]
    (run
       "computation t(input int8 x, output int32 y) { var int32 s = 0; for i in 0 .. 3 { s = s \
        + x; } y = s; }"
       [| 2 |])

(* ---- the campaign (the CI acceptance gate rides on the same entry) ---- *)

let test_campaign () =
  let r = Zfuzz.Fuzz.campaign ~verdict_every:25 ~ctx ~seed:7 ~count:100 () in
  Alcotest.(check int) "100 programs" 100 r.Zfuzz.Fuzz.programs;
  Alcotest.(check bool) "some ran the argument pipeline" true (r.Zfuzz.Fuzz.verdicts >= 4);
  (match r.Zfuzz.Fuzz.discrepancies with
  | [] -> ()
  | d :: _ ->
    Alcotest.fail
      (Printf.sprintf "discrepancy at index %d stage %s: %s\n%s" d.Zfuzz.Fuzz.index
         d.Zfuzz.Fuzz.stage d.Zfuzz.Fuzz.detail d.Zfuzz.Fuzz.source))

(* Campaigns are deterministic in (seed, index): regenerating any case
   gives the same program and inputs. *)
let test_campaign_deterministic () =
  for i = 0 to 4 do
    let p1, in1 = Zfuzz.Fuzz.case ~seed:99 i in
    let p2, in2 = Zfuzz.Fuzz.case ~seed:99 i in
    Alcotest.(check string) "same source" (Zlang.Printer.to_source p1) (Zlang.Printer.to_source p2);
    Alcotest.(check (array int)) "same inputs" in1 in2
  done

(* A handwritten clean program passes every oracle leg, and the legs do
   real work: the evaluator leg distinguishes programs the printer leg
   cannot (same shape, different constant). The end-to-end "oracle flags
   a broken toolchain" direction is covered by the break-transform tests
   below. *)
let test_oracle_detects () =
  let src_of s = Zlang.Parser.parse_program s in
  let good = src_of "computation t(input int8 x, output int32 y) { y = x + 1; }" in
  (match Zfuzz.Fuzz.oracle ~ctx ~verdict:true good [| 5 |] with
  | None -> ()
  | Some (stage, d) -> Alcotest.fail (Printf.sprintf "clean program flagged: %s %s" stage d));
  let skewed = src_of "computation t(input int8 x, output int32 y) { y = x + 2; }" in
  Alcotest.(check bool) "evaluator distinguishes near-identical programs" true
    (Zfuzz.Eval.run good [| 5 |] <> Zfuzz.Eval.run skewed [| 5 |])

(* ---- the shrinker ---- *)

let test_shrinker () =
  (* Predicate: program reads a3[0]. The minimum body satisfying it is a
     single statement; the shrinker must strictly reduce without ever
     breaking the predicate. *)
  let src =
    "computation t(input int8 x, input int8 a3[2], output int32 y) { var int32 u = x * x; var \
     int32 v = a3[0] + u; if (x > 0) { v = v + 1; } y = v + u; }"
  in
  let prog = Zlang.Parser.parse_program src in
  let reads_arr p =
    let rec in_e (e : Zlang.Ast.expr) =
      match e.Zlang.Ast.e with
      | Zlang.Ast.Index ("a3", _) -> true
      | Zlang.Ast.Index _ | Zlang.Ast.Int _ | Zlang.Ast.Var _ -> false
      | Zlang.Ast.Unop (_, a) -> in_e a
      | Zlang.Ast.Binop (_, a, b) -> in_e a || in_e b
    in
    let rec in_s (s : Zlang.Ast.stmt) =
      match s.Zlang.Ast.s with
      | Zlang.Ast.Decl (_, _, _, Some e) -> in_e e
      | Zlang.Ast.Decl _ -> false
      | Zlang.Ast.Assign (Zlang.Ast.Lvar _, e) -> in_e e
      | Zlang.Ast.Assign (Zlang.Ast.Lindex (_, i), e) -> in_e i || in_e e
      | Zlang.Ast.If (c, t, el) -> in_e c || List.exists in_s t || List.exists in_s el
      | Zlang.Ast.For (_, lo, hi, b) -> in_e lo || in_e hi || List.exists in_s b
    in
    List.exists in_s p.Zlang.Ast.body
  in
  let small = Zfuzz.Fuzz.shrink reads_arr prog in
  Alcotest.(check bool) "shrunk program still reads a3" true (reads_arr small);
  Alcotest.(check bool) "strictly smaller" true (Zfuzz.Fuzz.size small < Zfuzz.Fuzz.size prog);
  Alcotest.(check int) "down to a single statement" 1 (List.length small.Zlang.Ast.body)

(* ---- break-transform: the committed fixture and its provenance ---- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_broken_transform_fixture () =
  (* The committed fixture — a compiled system with one product-definition
     row deleted, minimized by the shrinker — must fail lint with ZR002. *)
  let sys = Constr.Serialize.system_of_string (read_file "lint_fixtures/fuzz_broken_transform.r1cs") in
  let findings = Zlint.lint_system sys in
  Alcotest.(check bool) "ZR002 fires" true
    (List.exists (fun (d : Zlint.Diagnostic.t) -> d.Zlint.Diagnostic.code = "ZR002") findings);
  Alcotest.(check bool) "error severity" true (Zlint.Diagnostic.has_errors findings)

let test_break_transform_detected () =
  (* Regenerate the mutation live: dropping the last def row from a fresh
     compiled system must be detected (statically or by the solver). *)
  match Zfuzz.Fuzz.break_transform ~ctx ~seed:42 ~count:20 () with
  | None -> Alcotest.fail "no detectable mutation in 20 programs"
  | Some bc ->
    Alcotest.(check bool) "ZR002 in findings" true
      (List.exists
         (fun (d : Zlint.Diagnostic.t) -> d.Zlint.Diagnostic.code = "ZR002")
         bc.Zfuzz.Fuzz.bt_findings)

let suite =
  [
    Alcotest.test_case "generator invariants (QCheck)" `Quick test_gen_invariants;
    Alcotest.test_case "printer round-trips the examples" `Quick test_printer_roundtrip_examples;
    Alcotest.test_case "printer preserves semantics" `Quick test_printer_preserves_semantics;
    Alcotest.test_case "evaluator gadget semantics" `Quick test_eval_semantics;
    Alcotest.test_case "100-program campaign, zero discrepancies" `Quick test_campaign;
    Alcotest.test_case "campaigns are (seed, index)-deterministic" `Quick test_campaign_deterministic;
    Alcotest.test_case "oracle legs are not vacuous" `Quick test_oracle_detects;
    Alcotest.test_case "shrinker minimizes under a predicate" `Quick test_shrinker;
    Alcotest.test_case "broken-transform fixture fails lint" `Quick test_broken_transform_fixture;
    Alcotest.test_case "transform mutations are detected" `Quick test_break_transform_detected;
  ]
