(* Zwire codec and socket-driver tests: round-trip properties per message
   type, decode-error taxonomy on truncated/corrupted frames, and an
   end-to-end fork+socketpair run checked against the in-process loopback. *)

open Fieldlib
open Zcrypto
open Argsys

let fctx = Fp.create Primes.p61
let gp = Primes.p89
let gctx = Fp.create gp
let wcodec = Zwire.codec ~group_p:gp fctx
let qtest name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)
let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_range 0 (1 lsl 20))
let prg_of seed = Chacha.Prg.create ~seed:(Printf.sprintf "wire-%d" seed) ()
let fel = Chacha.Prg.field fctx
let gel = Chacha.Prg.field gctx

(* Plant the edge elements 0, 1 and p-1 at the front of longer vectors so
   every round-trip run also exercises the width boundaries. *)
let vec prg n =
  Array.init n (fun i ->
      match i with
      | 0 when n > 3 -> Fp.zero
      | 1 when n > 3 -> Fp.one
      | 2 when n > 3 -> Fp.sub fctx Fp.zero Fp.one
      | _ -> fel prg)

let ct prg = { Elgamal.c1 = gel prg; c2 = gel prg }
let hex prg = Printf.sprintf "%016x" (Chacha.Prg.bits64 prg)

let rt ?(codec = wcodec) msg = Zwire.msg_equal msg (Zwire.decode ~codec (Zwire.encode ~codec msg))

let gen_hello prg =
  let batch = Chacha.Prg.int_below prg 4 in
  let width = Chacha.Prg.int_below prg 5 in
  Zwire.Hello
    {
      digest = hex prg;
      modulus = Primes.p61;
      rho = 1 + Chacha.Prg.int_below prg 10;
      rho_lin = 1 + Chacha.Prg.int_below prg 10;
      p_bits = 61;
      inputs = Array.init batch (fun _ -> vec prg width);
      trace_id = (if Chacha.Prg.int_below prg 2 = 0 then "" else hex prg);
    }

let gen_commit_request prg =
  let nz = Chacha.Prg.int_below prg 5 and nh = Chacha.Prg.int_below prg 5 in
  Zwire.Commit_request
    {
      group_p = gp;
      group_q = Primes.p61;
      group_g = gel prg;
      y_z = gel prg;
      y_h = gel prg;
      enc_r_z = Array.init nz (fun _ -> ct prg);
      enc_r_h = Array.init nh (fun _ -> ct prg);
    }

let gen_queries prg =
  let nq = Chacha.Prg.int_below prg 4 in
  Zwire.Queries
    {
      z_queries = Array.init nq (fun _ -> vec prg (Chacha.Prg.int_below prg 6));
      h_queries = Array.init nq (fun _ -> vec prg (Chacha.Prg.int_below prg 6));
      t_z = vec prg (Chacha.Prg.int_below prg 6);
      t_h = vec prg (Chacha.Prg.int_below prg 6);
    }

let gen_answers prg =
  let batch = Chacha.Prg.int_below prg 4 in
  Zwire.Answers
    (Array.init batch (fun _ ->
         {
           Zwire.claimed_io = vec prg (Chacha.Prg.int_below prg 5);
           claimed_output = vec prg (Chacha.Prg.int_below prg 3);
           z_resp = vec prg (Chacha.Prg.int_below prg 6);
           h_resp = vec prg (Chacha.Prg.int_below prg 6);
           a_t_z = fel prg;
           a_t_h = fel prg;
         }))

let roundtrip_tests =
  [
    qtest "hello round-trips" 50 arb_seed (fun s -> rt (gen_hello (prg_of s)));
    qtest "hello_ok round-trips" 20 arb_seed (fun s -> rt (Zwire.Hello_ok (hex (prg_of s))));
    qtest "commit_request round-trips" 50 arb_seed (fun s -> rt (gen_commit_request (prg_of s)));
    qtest "commitments round-trip" 50 arb_seed (fun s ->
        let prg = prg_of s in
        let n = Chacha.Prg.int_below prg 5 in
        rt (Zwire.Commitments (Array.init n (fun _ -> (ct prg, ct prg)))));
    qtest "queries round-trip" 50 arb_seed (fun s -> rt (gen_queries (prg_of s)));
    qtest "answers round-trip" 50 arb_seed (fun s -> rt (gen_answers (prg_of s)));
    qtest "verdicts round-trip" 20 arb_seed (fun s ->
        let prg = prg_of s in
        let n = Chacha.Prg.int_below prg 9 in
        rt (Zwire.Verdicts (Array.init n (fun _ -> Chacha.Prg.bool prg))));
    qtest "error_msg round-trips" 20 arb_seed (fun s ->
        rt (Zwire.Error_msg ("boom " ^ hex (prg_of s))));
  ]

(* ---- Malformed frames ---- *)

let decode_fails ?codec b =
  match Zwire.decode ?codec b with
  | _ -> None
  | exception Zwire.Decode_error e -> Some e

let check_error what expected got =
  match got with
  | Some e when e = expected -> ()
  | Some e -> Alcotest.failf "%s: expected %s, got %s" what (Zwire.error_to_string expected) (Zwire.error_to_string e)
  | None -> Alcotest.failf "%s: decoded successfully" what

let sample_msg () =
  let prg = prg_of 7 in
  Zwire.Queries
    { z_queries = [| vec prg 5 |]; h_queries = [| vec prg 5 |]; t_z = vec prg 5; t_h = vec prg 5 }

let corruption_tests =
  [
    Alcotest.test_case "every truncation is a Decode_error" `Quick (fun () ->
        let b = Zwire.encode ~codec:wcodec (gen_hello (prg_of 3)) in
        for k = 0 to Bytes.length b - 1 do
          match decode_fails ~codec:wcodec (Bytes.sub b 0 k) with
          | Some _ -> ()
          | None -> Alcotest.failf "prefix of %d bytes decoded" k
        done);
    Alcotest.test_case "bad magic" `Quick (fun () ->
        let b = Zwire.encode ~codec:wcodec (sample_msg ()) in
        Bytes.set b 0 'X';
        check_error "magic" Zwire.Bad_magic (decode_fails ~codec:wcodec b));
    Alcotest.test_case "bad version" `Quick (fun () ->
        let b = Zwire.encode ~codec:wcodec (sample_msg ()) in
        Bytes.set b 2 '\042';
        check_error "version" (Zwire.Bad_version 42) (decode_fails ~codec:wcodec b));
    Alcotest.test_case "bad tag" `Quick (fun () ->
        let b = Zwire.encode ~codec:wcodec (sample_msg ()) in
        Bytes.set b 3 '\099';
        check_error "tag" (Zwire.Bad_tag 99) (decode_fails ~codec:wcodec b));
    Alcotest.test_case "out-of-range element rejected, not reduced" `Quick (fun () ->
        (* The final 8 bytes of a one-instance Answers frame are a_t_h; all
           0xff exceeds p61 and must be refused. *)
        let prg = prg_of 11 in
        let msg =
          Zwire.Answers
            [|
              {
                Zwire.claimed_io = vec prg 2;
                claimed_output = vec prg 1;
                z_resp = vec prg 3;
                h_resp = vec prg 3;
                a_t_z = fel prg;
                a_t_h = fel prg;
              };
            |]
        in
        let b = Zwire.encode ~codec:wcodec msg in
        Bytes.fill b (Bytes.length b - 8) 8 '\255';
        check_error "element" (Zwire.Out_of_range "answers.a_t_h") (decode_fails ~codec:wcodec b));
    Alcotest.test_case "non-boolean verdict byte rejected" `Quick (fun () ->
        let b = Zwire.encode (Zwire.Verdicts [| true; false; true |]) in
        Bytes.set b (Bytes.length b - 1) '\007';
        check_error "verdict" (Zwire.Out_of_range "verdicts (not 0/1)") (decode_fails b));
    Alcotest.test_case "trailing junk rejected" `Quick (fun () ->
        let b = Zwire.encode ~codec:wcodec (sample_msg ()) in
        let b' = Bytes.cat b (Bytes.make 3 'x') in
        check_error "junk" (Zwire.Trailing_bytes 3) (decode_fails ~codec:wcodec b'));
    Alcotest.test_case "oversized payload length is truncation" `Quick (fun () ->
        let b = Zwire.encode ~codec:wcodec (sample_msg ()) in
        Bytes.set b 4 '\255';
        (match decode_fails ~codec:wcodec b with
        | Some (Zwire.Truncated _) -> ()
        | Some e -> Alcotest.failf "expected Truncated, got %s" (Zwire.error_to_string e)
        | None -> Alcotest.fail "decoded with absurd length"));
    Alcotest.test_case "queries without a codec need context" `Quick (fun () ->
        let b = Zwire.encode ~codec:wcodec (sample_msg ()) in
        match decode_fails b with
        | Some (Zwire.Missing_context _) -> ()
        | Some e -> Alcotest.failf "expected Missing_context, got %s" (Zwire.error_to_string e)
        | None -> Alcotest.fail "decoded without codec");
    Alcotest.test_case "commitments without group context" `Quick (fun () ->
        let prg = prg_of 13 in
        let b = Zwire.encode ~codec:wcodec (Zwire.Commitments [| (ct prg, ct prg) |]) in
        match decode_fails ~codec:(Zwire.codec fctx) b with
        | Some (Zwire.Missing_context _) -> ()
        | Some e -> Alcotest.failf "expected Missing_context, got %s" (Zwire.error_to_string e)
        | None -> Alcotest.fail "decoded without group modulus");
  ]

(* ---- End-to-end: socketpair vs loopback ---- *)

let fi = Fp.of_int fctx

(* Same y = x^2 + 3 computation as test_argument.ml. *)
let square_plus_3 : Argument.computation =
  let c1 =
    { Constr.R1cs.a = Constr.Lincomb.of_var 2; b = Constr.Lincomb.of_var 2; c = Constr.Lincomb.of_var 1 }
  in
  let c2 =
    {
      Constr.R1cs.a = Constr.Lincomb.add fctx (Constr.Lincomb.of_var 1) (Constr.Lincomb.of_const (fi 3));
      b = Constr.Lincomb.of_const Fp.one;
      c = Constr.Lincomb.of_var 3;
    }
  in
  let r1cs = { Constr.R1cs.field = fctx; num_vars = 3; num_z = 1; constraints = [| c1; c2 |] } in
  let solve x =
    let x0 = x.(0) in
    let sq = Fp.mul fctx x0 x0 in
    [| Fp.one; sq; x0; Fp.add fctx sq (fi 3) |]
  in
  { Argument.r1cs; num_inputs = 1; num_outputs = 1; solve }

(* Run a batch against a prover living in its own domain, over a Unix
   socketpair. The protocol is strict request/response ping-pong, so two
   blocking endpoints in one process cannot deadlock. (Unix.fork is off
   limits here: earlier suites in the runner already spawned domains.)
   Returns the verifier-side batch result. *)
let with_prover_domain ~lookup ~server_config (body : Znet.conn -> 'a) : 'a =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server_conn = Znet.of_fd b and client_conn = Znet.of_fd a in
  let server =
    Domain.spawn (fun () ->
        Fun.protect
          ~finally:(fun () -> try Znet.close server_conn with _ -> ())
          (fun () ->
            try
              Remote.handle_conn ~config:server_config ~lookup
                ~prg:(Chacha.Prg.create ~seed:"wire e2e prover" ())
                server_conn
            with Argument.Session_error _ | Znet.Net_error _ -> ()))
  in
  let finish () =
    (try Znet.close client_conn with _ -> ());
    Domain.join server
  in
  let res = try body client_conn with e -> finish (); raise e in
  finish ();
  res

let run_over_socketpair ~server_config ~seed inputs =
  let d = Argument.digest square_plus_3 in
  with_prover_domain ~server_config
    ~lookup:(fun d' -> if String.equal d' d then Some square_plus_3 else None)
    (fun conn ->
      Remote.run_conn ~config:Argument.test_config square_plus_3
        ~prg:(Chacha.Prg.create ~seed ())
        ~inputs conn)

let verdicts (r : Argument.batch_result) =
  Array.map (fun (i : Argument.instance_result) -> i.accepted) r.Argument.instances

let outputs (r : Argument.batch_result) =
  Array.map
    (fun (i : Argument.instance_result) -> Array.map Nat.to_decimal i.claimed_output)
    r.Argument.instances

let e2e_tests =
  [
    Alcotest.test_case "socket session matches loopback" `Quick (fun () ->
        let seed = "wire e2e verifier" in
        let inputs = Array.map (fun x -> [| fi x |]) [| 2; 5; 11 |] in
        let sock =
          run_over_socketpair ~server_config:Argument.test_config ~seed inputs
        in
        let loop =
          Argument.run_batch ~config:Argument.test_config square_plus_3
            ~prg:(Chacha.Prg.create ~seed ())
            ~inputs
        in
        Alcotest.(check bool) "socket all accepted" true (Argument.all_accepted sock);
        Alcotest.(check (array bool)) "same verdicts" (verdicts loop) (verdicts sock);
        Alcotest.(check (array (array string))) "same outputs" (outputs loop) (outputs sock));
    Alcotest.test_case "cheating remote prover rejected" `Quick (fun () ->
        let inputs = Array.map (fun x -> [| fi x |]) [| 3; 4; 9 |] in
        let r =
          run_over_socketpair
            ~server_config:{ Argument.test_config with Argument.strategy = Argument.Wrong_output }
            ~seed:"wire e2e cheat" inputs
        in
        Alcotest.(check bool) "none accepted" true (Argument.none_accepted r));
    Alcotest.test_case "unknown computation refused with Error_msg" `Quick (fun () ->
        let raised =
          with_prover_domain ~server_config:Argument.test_config ~lookup:(fun _ -> None)
            (fun conn ->
              try
                ignore
                  (Remote.run_conn ~config:Argument.test_config square_plus_3
                     ~prg:(Chacha.Prg.create ~seed:"wire e2e refuse v" ())
                     ~inputs:[| [| fi 2 |] |] conn);
                false
              with Argument.Session_error m -> String.length m > 0)
        in
        Alcotest.(check bool) "session error raised" true raised);
  ]

(* ---- Version negotiation ---- *)

(* v1 frames predate the Hello trace id; v2 appended it. Downlevel frames
   must keep decoding (with an empty trace id), and anything newer than
   [Zwire.version] must be refused with the Bad_version taxonomy — over a
   live connection, as an Error_msg before hanging up. *)
let version_tests =
  [
    qtest "hello encoded at v1 decodes with an empty trace id" 50 arb_seed (fun s ->
        match gen_hello (prg_of s) with
        | Zwire.Hello h ->
          Zwire.msg_equal
            (Zwire.Hello { h with Zwire.trace_id = "" })
            (Zwire.decode ~codec:wcodec (Zwire.encode ~codec:wcodec ~version:1 (Zwire.Hello h)))
        | _ -> false);
    qtest "non-hello messages are version-agnostic" 20 arb_seed (fun s ->
        let msg = gen_queries (prg_of s) in
        Zwire.msg_equal msg (Zwire.decode ~codec:wcodec (Zwire.encode ~codec:wcodec ~version:1 msg)));
    Alcotest.test_case "version below min_version refused" `Quick (fun () ->
        let b = Zwire.encode ~codec:wcodec (sample_msg ()) in
        Bytes.set b 2 '\000';
        check_error "v0" (Zwire.Bad_version 0) (decode_fails ~codec:wcodec b));
    Alcotest.test_case "next version refused (no silent forward-compat)" `Quick (fun () ->
        let b = Zwire.encode ~codec:wcodec (sample_msg ()) in
        Bytes.set b 2 (Char.chr (Zwire.version + 1));
        check_error "v+1" (Zwire.Bad_version (Zwire.version + 1)) (decode_fails ~codec:wcodec b));
    Alcotest.test_case "encode refuses versions outside the window" `Quick (fun () ->
        let bad v = match Zwire.encode ~version:v (Zwire.Verdicts [| true |]) with
          | _ -> false
          | exception Invalid_argument _ -> true
        in
        Alcotest.(check bool) "v0" true (bad 0);
        Alcotest.(check bool) "v+1" true (bad (Zwire.version + 1)));
    Alcotest.test_case "v1 hello accepted by a current prover" `Quick (fun () ->
        (* A downlevel verifier (no trace id on the wire) must still get its
           Hello_ok: the extension degrades, it does not divide. *)
        let d = Argument.digest square_plus_3 in
        let cfg = Argument.test_config in
        let hello =
          Zwire.Hello
            {
              Zwire.digest = d;
              modulus = Primes.p61;
              rho = cfg.Argument.params.Pcp.Pcp_zaatar.rho;
              rho_lin = cfg.Argument.params.Pcp.Pcp_zaatar.rho_lin;
              p_bits = cfg.Argument.p_bits;
              inputs = [| [| fi 2 |] |];
              trace_id = "dropped-on-v1-wire";
            }
        in
        let reply =
          with_prover_domain ~server_config:cfg
            ~lookup:(fun d' -> if String.equal d' d then Some square_plus_3 else None)
            (fun conn ->
              Znet.send conn (Zwire.encode ~version:1 hello);
              Zwire.decode (Znet.recv conn))
        in
        match reply with
        | Zwire.Hello_ok _ -> ()
        | m -> Alcotest.failf "expected Hello_ok, got tag %d" (Zwire.tag_of_msg m));
    Alcotest.test_case "newer-version hello refused with Error_msg" `Quick (fun () ->
        (* A peer from the future gets a clean protocol-level refusal, not a
           dropped connection. *)
        let d = Argument.digest square_plus_3 in
        let reply =
          with_prover_domain ~server_config:Argument.test_config
            ~lookup:(fun d' -> if String.equal d' d then Some square_plus_3 else None)
            (fun conn ->
              let b = Zwire.encode (gen_hello (prg_of 17)) in
              Bytes.set b 2 (Char.chr (Zwire.version + 1));
              Znet.send conn b;
              Zwire.decode (Znet.recv conn))
        in
        let contains_version s =
          let n = String.length s and p = "version" in
          let k = String.length p in
          let rec go i = i + k <= n && (String.sub s i k = p || go (i + 1)) in
          go 0
        in
        match reply with
        | Zwire.Error_msg m -> Alcotest.(check bool) "names the version" true (contains_version m)
        | m -> Alcotest.failf "expected Error_msg, got tag %d" (Zwire.tag_of_msg m));
  ]

let suite =
  roundtrip_tests @ corruption_tests @ e2e_tests @ version_tests
