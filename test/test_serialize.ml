open Fieldlib
open Constr

let ctx = Fp.create Primes.p61

let roundtrip_system sys =
  let s = Serialize.system_to_string sys in
  let sys' = Serialize.system_of_string s in
  Alcotest.(check int) "num_vars" sys.R1cs.num_vars sys'.R1cs.num_vars;
  Alcotest.(check int) "num_z" sys.R1cs.num_z sys'.R1cs.num_z;
  Alcotest.(check int) "constraints" (R1cs.num_constraints sys) (R1cs.num_constraints sys');
  Array.iteri
    (fun j (k : R1cs.constr) ->
      let k' = sys'.R1cs.constraints.(j) in
      Alcotest.(check bool) "a" true (Lincomb.equal k.R1cs.a k'.R1cs.a);
      Alcotest.(check bool) "b" true (Lincomb.equal k.R1cs.b k'.R1cs.b);
      Alcotest.(check bool) "c" true (Lincomb.equal k.R1cs.c k'.R1cs.c))
    sys.R1cs.constraints

let unit_tests =
  [
    Alcotest.test_case "random system roundtrips" `Quick (fun () ->
        for seed = 0 to 10 do
          let sys, w = Test_constr.random_satisfiable_r1cs seed in
          roundtrip_system sys;
          (* A satisfying witness of the original satisfies the parsed
             system too. *)
          let sys' = Serialize.system_of_string (Serialize.system_to_string sys) in
          Alcotest.(check bool) "still satisfied" true (R1cs.satisfied ctx sys' w)
        done);
    Alcotest.test_case "compiled benchmark roundtrips" `Quick (fun () ->
        let ctx = Fp.create Primes.p127 in
        let app = Apps.Lcs.app ~m:4 in
        let c = Apps.Glue.compile ctx app in
        roundtrip_system (Zlang.Compile.zaatar_r1cs c));
    Alcotest.test_case "witness roundtrips" `Quick (fun () ->
        let prg = Chacha.Prg.create ~seed:"ser wit" () in
        let w = Array.init 33 (fun _ -> Chacha.Prg.field ctx prg) in
        let ctx', w' = Serialize.assignment_of_string (Serialize.assignment_to_string ctx w) in
        Alcotest.(check bool) "modulus" true (Nat.equal (Fp.modulus ctx') (Fp.modulus ctx));
        Array.iteri (fun i e -> Alcotest.(check bool) "el" true (Fp.equal e w'.(i))) w);
    Alcotest.test_case "comments and blank lines are skipped" `Quick (fun () ->
        let sys, _ = Test_constr.random_satisfiable_r1cs 3 in
        let s = Serialize.system_to_string sys in
        let s = "# header comment\n\n" ^ s ^ "\n# trailing\n" in
        roundtrip_system (Serialize.system_of_string s) |> ignore;
        ignore (Serialize.system_of_string s));
    Alcotest.test_case "garbage is rejected" `Quick (fun () ->
        List.iter
          (fun bad ->
            Alcotest.(check bool) "raises" true
              (try
                 ignore (Serialize.system_of_string bad);
                 false
               with Serialize.Parse_error _ -> true))
          [ ""; "bogus header"; "r1cs v=1 z=1 c=1 p=3d\nA 1:1\nB 1:1" (* missing row *) ]);
    Alcotest.test_case "parsed system is wellformed-checked" `Quick (fun () ->
        let bad = "r1cs v=1 z=1 c=1 p=1fffffffffffffff\nA 9:1\nB 0:1\nC 0:0\n" in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Serialize.system_of_string bad);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "CRLF and trailing whitespace tolerated" `Quick (fun () ->
        let sys, w = Test_constr.random_satisfiable_r1cs 5 in
        let s = Serialize.system_to_string sys in
        (* Re-join with DOS line endings and pad lines with trailing blanks,
           as a file edited on Windows or mangled by a mailer would be. *)
        let dos =
          String.split_on_char '\n' s |> List.map (fun l -> l ^ "  \r") |> String.concat "\n"
        in
        let sys' = Serialize.system_of_string dos in
        roundtrip_system sys';
        Alcotest.(check bool) "still satisfied" true (R1cs.satisfied ctx sys' w);
        let prg = Chacha.Prg.create ~seed:"ser crlf" () in
        let wit = Array.init 9 (fun _ -> Chacha.Prg.field ctx prg) in
        let wos =
          String.split_on_char '\n' (Serialize.assignment_to_string ctx wit)
          |> List.map (fun l -> l ^ "\r")
          |> String.concat "\n"
        in
        let _, wit' = Serialize.assignment_of_string wos in
        Array.iteri (fun i e -> Alcotest.(check bool) "el" true (Fp.equal e wit'.(i))) wit);
    Alcotest.test_case "parse errors carry line numbers" `Quick (fun () ->
        let line_of msg =
          try
            Scanf.sscanf msg "line %d" (fun n -> Some n)
          with Scanf.Scan_failure _ | End_of_file -> None
        in
        let expect_line n input =
          match Serialize.system_of_string input with
          | _ -> Alcotest.failf "parsed: %S" input
          | exception Serialize.Parse_error msg ->
            Alcotest.(check (option int)) (Printf.sprintf "line in %S" msg) (Some n) (line_of msg)
        in
        (* Bad term on physical line 3 (the A row); a comment on line 2 must
           not shift the reported number. *)
        expect_line 3 "r1cs v=1 z=1 c=1 p=3d\n# comment\nA nonsense\nB 0:1\nC 0:0\n";
        expect_line 4 "r1cs v=1 z=1 c=1 p=3d\nA 1:1\nB 0:1\nC 0:zz\n";
        expect_line 1 "bogus header\n");
    Alcotest.test_case "system digest is stable and discriminating" `Quick (fun () ->
        let sys, _ = Test_constr.random_satisfiable_r1cs 1 in
        let sys2, _ = Test_constr.random_satisfiable_r1cs 2 in
        let d = Serialize.system_digest sys in
        Alcotest.(check int) "16 hex chars" 16 (String.length d);
        String.iter
          (fun c ->
            Alcotest.(check bool) "hex" true
              (match c with '0' .. '9' | 'a' .. 'f' -> true | _ -> false))
          d;
        Alcotest.(check string) "deterministic" d (Serialize.system_digest sys);
        Alcotest.(check bool) "distinct systems differ" true (d <> Serialize.system_digest sys2));
  ]

let suite = unit_tests
