(* Zlint: both analyzer layers against the deliberately-broken fixtures in
   lint_fixtures/, plus the soundness acceptance cases — dropping a single
   constraint from a compiled example must surface as an error — and the
   cleanliness of every shipped example and benchmark computation. *)

open Fieldlib

let ctx = Fp.create Primes.p127

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fixture name = read_file (Filename.concat "lint_fixtures" name)

let codes ds = List.sort_uniq compare (List.map (fun d -> d.Zlint.Diagnostic.code) ds)
let has_code c ds = List.mem c (codes ds)

let check_fires what expected ds =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires %s (got: %s)" what expected (String.concat "," (codes ds)))
    true (has_code expected ds)

(* ---- frontend fixtures: one diagnostic code each ---- *)

let test_zl_fixtures () =
  let lint ?cfg name = Zlint.Frontend.check_source ?cfg (fixture name) in
  check_fires "zl000_parse.zl" "ZL000" (lint "zl000_parse.zl");
  check_fires "zl001_uninit.zl" "ZL001" (lint "zl001_uninit.zl");
  check_fires "zl002_unused.zl" "ZL002" (lint "zl002_unused.zl");
  check_fires "zl003_shadow.zl" "ZL003" (lint "zl003_shadow.zl");
  check_fires "zl004_unroll.zl" "ZL004"
    (lint ~cfg:{ Zlint.Frontend.unroll_budget = 1000 } "zl004_unroll.zl");
  check_fires "zl005_constcond.zl" "ZL005" (lint "zl005_constcond.zl");
  check_fires "zl006_undef.zl" "ZL006" (lint "zl006_undef.zl")

let test_zl_severities () =
  (* The error/warn split drives the exit-code contract: ZL001/ZL003/ZL006
     must be errors, ZL002/ZL004 warnings, ZL005 info. *)
  let has_err name = Zlint.Diagnostic.has_errors (Zlint.Frontend.check_source (fixture name)) in
  Alcotest.(check bool) "uninit read is an error" true (has_err "zl001_uninit.zl");
  Alcotest.(check bool) "shadowing is an error" true (has_err "zl003_shadow.zl");
  Alcotest.(check bool) "undefined var is an error" true (has_err "zl006_undef.zl");
  Alcotest.(check bool) "unused var is not an error" false (has_err "zl002_unused.zl");
  Alcotest.(check bool) "const condition is not an error" false (has_err "zl005_constcond.zl")

let test_uninit_branch_merge () =
  (* Assigned in both branches: initialized afterwards. Assigned in one:
     still a ZL001 at the later read. *)
  let both =
    "computation m(input int8 x, output int32 y) { var int32 s; if (x > 0) { s = 1; } else { s \
     = 2; } y = s; }"
  in
  let one =
    "computation m(input int8 x, output int32 y) { var int32 s; if (x > 0) { s = 1; } y = s; }"
  in
  Alcotest.(check (list string)) "both branches assign -> clean" []
    (codes (Zlint.Frontend.check_source both));
  check_fires "one branch assigns" "ZL001" (Zlint.Frontend.check_source one)

(* ---- backend fixtures ---- *)

let lint_r1cs name = Zlint.lint_system (Constr.Serialize.system_of_string (fixture name))

let test_zr_fixtures () =
  check_fires "zr001_unconstrained.r1cs" "ZR001" (lint_r1cs "zr001_unconstrained.r1cs");
  check_fires "zr002_underdetermined.r1cs" "ZR002" (lint_r1cs "zr002_underdetermined.r1cs");
  check_fires "zr003_duplicate.r1cs" "ZR003" (lint_r1cs "zr003_duplicate.r1cs");
  check_fires "zr004_trivial.r1cs" "ZR004" (lint_r1cs "zr004_trivial.r1cs");
  check_fires "zr005_k2dup.r1cs" "ZR005" (lint_r1cs "zr005_k2dup.r1cs");
  check_fires "zr007_unsat.r1cs" "ZR007" (lint_r1cs "zr007_unsat.r1cs");
  (* ZR008 is info-severity: it must fire without flipping the exit code. *)
  let zr008 = lint_r1cs "zr008_multiroot.r1cs" in
  check_fires "zr008_multiroot.r1cs" "ZR008" zr008;
  Alcotest.(check int) "ZR008 alone keeps exit 0" 0
    (Zlint.exit_code [ { Zlint.file = "zr008_multiroot.r1cs"; findings = zr008 } ])

let test_zr006_unreachable_output () =
  (* w3 (the output) is bound only to witness w1, which no input touches:
     the output is disconnected from the inputs. *)
  let open Constr in
  let one = Lincomb.of_var in
  let sys =
    {
      R1cs.field = ctx;
      num_vars = 3;
      num_z = 1;
      constraints = [| { R1cs.a = one 1; b = Lincomb.of_var 0; c = one 3 } |];
    }
  in
  let ds = Zlint.Backend.analyze ~io:{ Zlint.Backend.num_inputs = 1; num_outputs = 1 } sys in
  check_fires "disconnected output" "ZR006" ds;
  (* w1 is also under-determined and the input w2 unused. *)
  check_fires "disconnected witness" "ZR002" ds

(* ---- the acceptance case: drop one constraint from a compiled example ---- *)

let compile_example file = Zlang.Compile.compile ~ctx (read_file (Filename.concat "../examples" file))

let io_of (c : Zlang.Compile.compiled) =
  { Zlint.Backend.num_inputs = c.Zlang.Compile.num_inputs; num_outputs = c.Zlang.Compile.num_outputs }

let drop_row sys j =
  let keep = ref [] in
  Constr.R1cs.iteri (fun i k -> if i <> j then keep := k :: !keep) sys;
  { sys with Constr.R1cs.constraints = Array.of_list (List.rev !keep) }

let test_dropped_constraint_detected () =
  let c = compile_example "matmul.zl" in
  let sys = Zlang.Compile.zaatar_r1cs c in
  let io = io_of c in
  Alcotest.(check (list string)) "intact matmul is clean" [] (codes (Zlint.Backend.analyze ~io sys));
  (* Some single-row drop must under-determine a witness (ZR002) and some
     other must orphan a variable entirely (ZR001 at error severity). *)
  let zr001 = ref false and zr002 = ref false in
  for j = 0 to Constr.R1cs.num_constraints sys - 1 do
    let ds = Zlint.Backend.analyze ~io (drop_row sys j) in
    if has_code "ZR002" ds then zr002 := true;
    if
      List.exists
        (fun d ->
          d.Zlint.Diagnostic.code = "ZR001" && d.Zlint.Diagnostic.severity = Zlint.Diagnostic.Error)
        ds
    then zr001 := true;
    if ds = [] then ()
  done;
  Alcotest.(check bool) "some drop orphans a variable (ZR001)" true !zr001;
  Alcotest.(check bool) "some drop under-determines the witness (ZR002)" true !zr002;
  (* And every error-producing mutation keeps the exit-code contract. *)
  let mutilated = drop_row sys (Constr.R1cs.num_constraints sys - 1) in
  let report = { Zlint.file = "matmul[dropped]"; findings = Zlint.Backend.analyze ~io mutilated } in
  if Zlint.Diagnostic.has_errors report.Zlint.findings then
    Alcotest.(check int) "errors map to exit 2" 2 (Zlint.exit_code [ report ])

(* ---- everything we ship must be clean ---- *)

let test_examples_clean () =
  List.iter
    (fun f ->
      Alcotest.(check (list string))
        (f ^ " lints clean") []
        (codes (Zlint.lint_zl ~ctx (read_file (Filename.concat "../examples" f)))))
    [ "ema.zl"; "matmul.zl"; "payroll.zl" ]

let test_benchmarks_clean () =
  List.iter
    (fun (app : Apps.App_def.t) ->
      Alcotest.(check (list string))
        (app.Apps.App_def.name ^ " lints clean")
        []
        (codes (Zlint.lint_zl ~ctx app.Apps.App_def.source)))
    (Apps.Registry.suite ())

(* ---- report plumbing ---- *)

let test_json_stability () =
  (* The JSON shape is part of the CLI contract (asserted verbatim). *)
  let d =
    Zlint.Diagnostic.make ~code:"ZL001" ~severity:Zlint.Diagnostic.Error
      ~location:(Zlint.Diagnostic.Source { Zlang.Ast.line = 4; col = 7 })
      "%s" "read before assignment"
  in
  let report = { Zlint.file = "prog.zl"; findings = [ d ] } in
  Alcotest.(check string) "lint report JSON"
    ("{\"schema\":\"zaatar-lint/1\",\"files\":[{\"file\":\"prog.zl\",\"findings\":[{\"code\":\"ZL001\","
   ^ "\"severity\":\"error\",\"line\":4,\"col\":7,\"message\":\"read before assignment\"}]}],"
   ^ "\"totals\":{\"errors\":1,\"warnings\":0,\"info\":0},\"exit_code\":2}")
    (Zobs.Json.to_string (Zlint.render_json [ report ]))

let test_truncation () =
  let ds =
    List.init 30 (fun i ->
        Zlint.Diagnostic.make ~code:"ZR003" ~severity:Zlint.Diagnostic.Warn
          ~location:(Zlint.Diagnostic.Row i) "%s" "duplicate row")
  in
  let kept = Zlint.Diagnostic.truncate ~limit:20 ds in
  (* 20 kept + 1 "suppressed" info line. *)
  Alcotest.(check int) "truncated to limit + summary" 21 (List.length kept);
  Alcotest.(check bool) "summary mentions the count" true
    (List.exists (fun d -> d.Zlint.Diagnostic.severity = Zlint.Diagnostic.Info) kept)

let test_exit_codes () =
  let clean = { Zlint.file = "a"; findings = [] } in
  let warn =
    {
      Zlint.file = "b";
      findings = [ Zlint.Diagnostic.make ~code:"ZL002" ~severity:Zlint.Diagnostic.Warn "%s" "w" ];
    }
  in
  let err =
    {
      Zlint.file = "c";
      findings = [ Zlint.Diagnostic.make ~code:"ZL001" ~severity:Zlint.Diagnostic.Error "%s" "e" ];
    }
  in
  Alcotest.(check int) "clean -> 0" 0 (Zlint.exit_code [ clean ]);
  Alcotest.(check int) "warnings only -> 0" 0 (Zlint.exit_code [ clean; warn ]);
  Alcotest.(check int) "any error -> 2" 2 (Zlint.exit_code [ clean; warn; err ])

let suite =
  [
    Alcotest.test_case "ZL fixtures fire their codes" `Quick test_zl_fixtures;
    Alcotest.test_case "ZL severity split" `Quick test_zl_severities;
    Alcotest.test_case "uninit-read branch merging" `Quick test_uninit_branch_merge;
    Alcotest.test_case "ZR fixtures fire their codes" `Quick test_zr_fixtures;
    Alcotest.test_case "ZR006 disconnected output" `Quick test_zr006_unreachable_output;
    Alcotest.test_case "dropped constraint is detected" `Quick test_dropped_constraint_detected;
    Alcotest.test_case "examples lint clean" `Quick test_examples_clean;
    Alcotest.test_case "benchmarks lint clean" `Quick test_benchmarks_clean;
    Alcotest.test_case "JSON report stability" `Quick test_json_stability;
    Alcotest.test_case "per-code truncation" `Quick test_truncation;
    Alcotest.test_case "exit-code contract" `Quick test_exit_codes;
  ]
