open Fieldlib
open Constr
open Pcp

(* Cross-cutting protocol properties that don't belong to a single layer:
   reproducibility of pseudorandomly-derived queries ([53, Apdx A.3]:
   queries can be shipped as a PRG seed), behaviour under flaky provers,
   and batch semantics. *)

let ctx = Fp.create Primes.p61

let random_sys seed = Test_constr.random_satisfiable_r1cs seed

let params = Pcp_zaatar.test_params

let unit_tests =
  [
    Alcotest.test_case "queries are derived deterministically from the seed" `Quick (fun () ->
        (* The network-cost optimization of §A.3: V and P can derive the
           query vectors from a shared seed. Same seed => identical
           queries. *)
        let sys, _ = random_sys 42 in
        let qap = Qapb.of_r1cs sys in
        let q1 = Pcp_zaatar.gen_queries ~params qap (Chacha.Prg.create ~seed:"shared" ()) in
        let q2 = Pcp_zaatar.gen_queries ~params qap (Chacha.Prg.create ~seed:"shared" ()) in
        Array.iteri
          (fun i v ->
            Array.iteri
              (fun j x -> Alcotest.(check bool) "same z query" true (Fp.equal x q2.Pcp_zaatar.z_queries.(i).(j)))
              v)
          q1.Pcp_zaatar.z_queries;
        Array.iteri
          (fun i v ->
            Array.iteri
              (fun j x -> Alcotest.(check bool) "same h query" true (Fp.equal x q2.Pcp_zaatar.h_queries.(i).(j)))
              v)
          q1.Pcp_zaatar.h_queries);
    Alcotest.test_case "different seeds give different queries" `Quick (fun () ->
        let sys, _ = random_sys 42 in
        let qap = Qapb.of_r1cs sys in
        let q1 = Pcp_zaatar.gen_queries ~params qap (Chacha.Prg.create ~seed:"a" ()) in
        let q2 = Pcp_zaatar.gen_queries ~params qap (Chacha.Prg.create ~seed:"b" ()) in
        let same = ref true in
        Array.iteri
          (fun i v ->
            Array.iteri
              (fun j x -> if not (Fp.equal x q2.Pcp_zaatar.z_queries.(i).(j)) then same := false)
              v)
          q1.Pcp_zaatar.z_queries;
        Alcotest.(check bool) "differ" false !same);
    Alcotest.test_case "flaky oracle is rejected (failure injection)" `Quick (fun () ->
        (* A prover whose storage/links corrupt a fraction of answers: the
           verifier must notice. With hundreds of answered queries, even a
           10% flake rate trips a linearity or consistency check w.h.p. *)
        let sys, w = random_sys 77 in
        let qap = Qapb.of_r1cs sys in
        let io = Array.sub w (sys.R1cs.num_z + 1) (R1cs.num_io sys) in
        let z = Array.sub w 1 sys.R1cs.num_z in
        let h = Qapb.prover_h qap w in
        let rejected = ref 0 in
        let trials = 20 in
        for i = 1 to trials do
          let prg = Chacha.Prg.create ~seed:(Printf.sprintf "flaky %d" i) () in
          let oracle =
            Oracle.flaky ctx (Oracle.honest ctx z h)
              (Chacha.Prg.create ~seed:(Printf.sprintf "flake src %d" i) ())
              ~flake_prob_percent:10
          in
          if not (Pcp_zaatar.accepts (Pcp_zaatar.run ~params qap prg oracle ~io)) then incr rejected
        done;
        Alcotest.(check bool) "mostly rejected" true (!rejected >= trials - 1));
    Alcotest.test_case "zero flake rate is accepted" `Quick (fun () ->
        let sys, w = random_sys 78 in
        let qap = Qapb.of_r1cs sys in
        let io = Array.sub w (sys.R1cs.num_z + 1) (R1cs.num_io sys) in
        let z = Array.sub w 1 sys.R1cs.num_z in
        let h = Qapb.prover_h qap w in
        let prg = Chacha.Prg.create ~seed:"flaky0" () in
        let oracle =
          Oracle.flaky ctx (Oracle.honest ctx z h)
            (Chacha.Prg.create ~seed:"flake src 0" ())
            ~flake_prob_percent:0
        in
        Alcotest.(check bool) "accepted" true
          (Pcp_zaatar.accepts (Pcp_zaatar.run ~params qap prg oracle ~io)));
    Alcotest.test_case "batch isolates instances (one cheat does not taint others)" `Quick
      (fun () ->
        (* Run a batch where the underlying witnesses are honest; all must
           verify independently with per-instance verdicts. *)
        let fi = Fp.of_int ctx in
        let comp = Test_argument.square_plus_3 in
        let prg = Chacha.Prg.create ~seed:"batch isolate" () in
        let r =
          Argsys.Argument.run_batch ~config:Argsys.Argument.test_config comp ~prg
            ~inputs:(Array.map (fun x -> [| fi x |]) [| 1; 2; 3; 4; 5; 6 |])
        in
        Alcotest.(check int) "six instances" 6 (Array.length r.Argsys.Argument.instances);
        Alcotest.(check bool) "all accepted" true (Argsys.Argument.all_accepted r));
    Alcotest.test_case "prg field_array shape" `Quick (fun () ->
        let prg = Chacha.Prg.create ~seed:"fa" () in
        let a = Chacha.Prg.field_array ctx prg 33 in
        Alcotest.(check int) "len" 33 (Array.length a);
        Array.iter
          (fun x -> Alcotest.(check bool) "reduced" true (Nat.compare (Fp.to_nat x) (Fp.modulus ctx) < 0))
          a);
  ]

let suite = unit_tests
